// Tests for the lazy dataflow capture with cross-loop fusion
// (ops/loop_chain.hpp + ops/dataflow.hpp): tiled execution must be
// bit-identical to the sequential schedule for stencil chains of any
// depth and every tile size; RW dats are healed by row
// double-buffering, WAR edges and reductions split the chain instead of
// throwing, and a thrown kernel leaves the chain reusable.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <random>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "ops/loop_chain.hpp"
#include "ops/ops.hpp"
#include "runtime/autotune/autotune.hpp"
#include "sycl/launch_log.hpp"

namespace ops = syclport::ops;

namespace {

ops::Options serial() {
  ops::Options o;
  o.backend = ops::Backend::Serial;
  return o;
}

/// A 3-loop producer-consumer chain: b = lap(a); c = lap(b); d = lap(c).
/// Returns the interior sum of d.
double run_chain(std::size_t n, std::size_t tile) {
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1),
      d(grid, "d", 1, 1);
  for (long i = -1; i <= static_cast<long>(n); ++i)
    for (long j = -1; j <= static_cast<long>(n); ++j)
      a.at(i, j) = std::sin(0.3 * i) * std::cos(0.4 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = in(0, 0) + 0.2 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1) -
                                  4.0 * in(0, 0));
  };
  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"l1"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S2D_5PT, ops::Acc::R));
  chain.enqueue({"l2"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                ops::arg(b, ops::S2D_5PT, ops::Acc::R));
  chain.enqueue({"l3"}, lap, ops::arg(d, ops::S_PT, ops::Acc::W),
                ops::arg(c, ops::S2D_5PT, ops::Acc::R));
  chain.execute(tile);
  return d.interior_sum();
}

}  // namespace

TEST(LoopChain, UntiledMatchesDirectExecution) {
  // tile=0 (reference) must equal running par_loops directly.
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {16, 16, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
  for (long i = 0; i < 16; ++i)
    for (long j = 0; j < 16; ++j) a.at(i, j) = i * 16.0 + j;

  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"copy"},
                [](ops::ACC<double> out, ops::ACC<double> in) {
                  out(0, 0) = 2.0 * in(0, 0);
                },
                ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S_PT, ops::Acc::R));
  EXPECT_EQ(chain.size(), 1u);
  chain.execute(0);
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_DOUBLE_EQ(b.interior_sum(), 2.0 * a.interior_sum());
}

TEST(LoopChain, TiledIdenticalToSequentialForAllTileSizes) {
  const double ref = run_chain(24, 0);
  for (std::size_t tile : {1u, 2u, 3u, 5u, 8u, 16u, 24u, 100u}) {
    EXPECT_DOUBLE_EQ(run_chain(24, tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, DeepChainWithMixedRadii) {
  // Radius-2 then radius-1 then pointwise; expansion must accumulate.
  ops::Context ctx(serial());
  const std::size_t n = 20;
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 2), b(grid, "b", 1, 2), c(grid, "c", 1, 2),
      d(grid, "d", 1, 2);
  for (long i = -2; i <= static_cast<long>(n) + 1; ++i)
    for (long j = -2; j <= static_cast<long>(n) + 1; ++j)
      a.at(i, j) = 0.1 * i - 0.2 * j + 0.01 * i * j;

  auto build_and_run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    d.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"r2"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(2, 0) + in(-2, 0) + in(0, 2) + in(0, -2);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::star(2, 2), ops::Acc::R));
    chain.enqueue({"r1"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(1, 0) - in(-1, 0) + 0.5 * in(0, 0);
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"pt"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) * in(0, 0);
                  },
                  ops::arg(d, ops::S_PT, ops::Acc::W),
                  ops::arg(c, ops::S_PT, ops::Acc::R));
    chain.execute(tile);
    return d.interior_sum();
  };
  const double ref = build_and_run(0);
  for (std::size_t tile : {2u, 4u, 7u, 13u}) {
    EXPECT_DOUBLE_EQ(build_and_run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, TileLargerThanExtentRunsUntiled) {
  // tile >= extent must collapse to the single-sweep reference
  // schedule - no overlap expansion, bit-identical result.
  const double ref = run_chain(12, 0);
  EXPECT_DOUBLE_EQ(run_chain(12, 12), ref);    // exactly one tile
  EXPECT_DOUBLE_EQ(run_chain(12, 13), ref);    // first tile covers all
  EXPECT_DOUBLE_EQ(run_chain(12, 1000), ref);  // tile >> extent
}

TEST(LoopChain, RadiusZeroChainNeedsNoExpansion) {
  // A chain of pointwise loops has zero slow radius everywhere; every
  // tiling must match the reference exactly (expansion stays 0).
  ops::Context ctx(serial());
  const std::size_t n = 10;
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = 0; i < static_cast<long>(n); ++i)
    for (long j = 0; j < static_cast<long>(n); ++j)
      a.at(i, j) = 1.0 + 0.5 * static_cast<double>(i * 10 + j);

  auto build_and_run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"sq"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) * in(0, 0);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S_PT, ops::Acc::R));
    chain.enqueue({"half"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = 0.5 * in(0, 0);
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S_PT, ops::Acc::R));
    chain.execute(tile);
    return c.interior_sum();
  };
  const double ref = build_and_run(0);
  for (std::size_t tile : {1u, 3u, 10u}) {
    EXPECT_DOUBLE_EQ(build_and_run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, AutotunedExecutePicksTileAndStaysExact) {
  // execute() with no explicit tile hands the depth to the autotuner;
  // whatever it explores, every chain run must stay bit-identical to
  // the reference schedule.
  namespace at = syclport::rt::autotune;
  at::Autotuner::instance().reset(at::Autotuner::Mode::On, "fp-chain", "");

  const std::size_t n = 24;
  ops::Options o = serial();
  o.tune = true;
  ops::Context ctx(o);
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = -1; i <= static_cast<long>(n); ++i)
    for (long j = -1; j <= static_cast<long>(n); ++j)
      a.at(i, j) = std::sin(0.2 * i) + std::cos(0.3 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  auto run_once = [&](std::optional<std::size_t> tile) {
    b.fill(0.0);
    c.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"t1"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"t2"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    return c.interior_sum();
  };
  const double ref = run_once(0);
  for (int i = 0; i < 40; ++i)  // spans explore + exploit rounds
    EXPECT_DOUBLE_EQ(run_once(std::nullopt), ref) << "run " << i;

  at::Autotuner::instance().reset(at::Autotuner::Mode::Off, "", "");
}

TEST(LoopChain, InPlaceDatsDoubleBufferedUnderTiling) {
  // b = lap(a); c = 0.5*c + b (in-place, pointwise); d = lap(c).
  // The trailing radius forces ghost re-execution of the RW loop; the
  // row double-buffer must restore c before each re-run so the
  // read-modify-write stays idempotent under overlap recompute.
  ops::Context ctx(serial());
  const long n = 20;
  ops::Block grid(ctx, "g", 2, {20, 20, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1),
      d(grid, "d", 1, 1);
  for (long i = -1; i <= n; ++i)
    for (long j = -1; j <= n; ++j) a.at(i, j) = std::sin(0.3 * i - 0.2 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = in(0, 0) + 0.2 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1) -
                                  4.0 * in(0, 0));
  };
  auto run = [&](std::size_t tile) {
    b.fill(0.0);
    for (long i = -1; i <= n; ++i)
      for (long j = -1; j <= n; ++j) c.at(i, j) = 0.01 * i + 0.02 * j;
    d.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"produce"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"accum"},
                  [](ops::ACC<double> x, ops::ACC<double> in) {
                    x(0, 0) = 0.5 * x(0, 0) + in(0, 0);
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::RW),
                  ops::arg(b, ops::S_PT, ops::Acc::R));
    chain.enqueue({"consume"}, lap, ops::arg(d, ops::S_PT, ops::Acc::W),
                  ops::arg(c, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    EXPECT_EQ(chain.last_segments(), 1u) << "pointwise RW must stay fusable";
    return std::pair(c.interior_sum(), d.interior_sum());
  };
  const auto ref = run(0);
  for (std::size_t tile : {1u, 2u, 3u, 5u, 8u, 20u, 64u}) {
    const auto got = run(tile);
    EXPECT_DOUBLE_EQ(got.first, ref.first) << "tile=" << tile;
    EXPECT_DOUBLE_EQ(got.second, ref.second) << "tile=" << tile;
  }
}

TEST(LoopChain, ReductionTerminatesSegmentAndStaysExact) {
  // b = lap(a); sum over b (radius-1 read); c = lap(b). The reduction
  // must close its segment (its rows run exactly once, in row order, so
  // the FP sum is bit-identical), and the chain continues after it.
  ops::Context ctx(serial());
  const long n = 18;
  ops::Block grid(ctx, "g", 2, {18, 18, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = -1; i <= n; ++i)
    for (long j = -1; j <= n; ++j) a.at(i, j) = std::cos(0.4 * i) + 0.1 * j;

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  std::size_t segs = 0;
  auto run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    double s = 0.0;
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"p"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"sum"},
                  [](ops::ACC<double> x, ops::Reducer<double> r) {
                    r += x(0, 1) - 0.5 * x(1, 0);
                  },
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R),
                  ops::reduce(s, ops::RedOp::Sum));
    chain.enqueue({"q"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    segs = chain.last_segments();
    return std::pair(s, c.interior_sum());
  };
  const auto ref = run(0);
  EXPECT_EQ(segs, 2u) << "reduction must terminate its segment";
  for (std::size_t tile : {2u, 5u, 9u, 18u}) {
    const auto got = run(tile);
    EXPECT_DOUBLE_EQ(got.first, ref.first) << "tile=" << tile;
    EXPECT_DOUBLE_EQ(got.second, ref.second) << "tile=" << tile;
  }
}

TEST(LoopChain, WriteAfterReadSplitsChain) {
  // b = f(a); a = g(b) - overlap re-execution of f would re-read
  // clobbered rows of a, so the chain must split at the WAR edge (two
  // segments) and stay bit-exact instead of throwing.
  ops::Context ctx(serial());
  const long n = 16;
  ops::Block grid(ctx, "g", 2, {16, 16, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
  std::size_t segs = 0;
  auto run = [&](std::size_t tile) {
    for (long i = -1; i <= n; ++i)
      for (long j = -1; j <= n; ++j) a.at(i, j) = 0.3 * i - 0.7 * j;
    b.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"f"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 1);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"g"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, -1);
                  },
                  ops::arg(a, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    segs = chain.last_segments();
    return a.interior_sum() + 3.0 * b.interior_sum();
  };
  const double ref = run(0);
  EXPECT_EQ(segs, 2u) << "WAR edge must cut the chain";
  for (std::size_t tile : {1u, 3u, 4u, 8u, 16u}) {
    EXPECT_DOUBLE_EQ(run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, InPlaceStencilReadIsolatesLoop) {
  // An RW dat read through a nonzero-radius stencil (in-place
  // Gauss-Seidel sweep) cannot be overlap-tiled: the loop must land in
  // its own segment, and the whole chain stays bit-exact.
  ops::Context ctx(serial());
  const long n = 16;
  ops::Block grid(ctx, "g", 2, {16, 16, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
  std::size_t segs = 0;
  auto run = [&](std::size_t tile) {
    for (long i = -1; i <= n; ++i)
      for (long j = -1; j <= n; ++j) a.at(i, j) = std::sin(0.5 * i * j + i);
    b.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"gs"},
                  [](ops::ACC<double> x) {
                    x(0, 0) = 0.25 * (x(1, 0) + x(-1, 0) + x(0, 1) + x(0, -1));
                  },
                  ops::arg(a, ops::S2D_5PT, ops::Acc::RW));
    chain.enqueue({"obs"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) + in(1, 0);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    segs = chain.last_segments();
    return std::pair(a.interior_sum(), b.interior_sum());
  };
  const auto ref = run(0);
  EXPECT_EQ(segs, 2u) << "in-place stencil read must be isolated";
  for (std::size_t tile : {2u, 5u, 16u}) {
    const auto got = run(tile);
    EXPECT_DOUBLE_EQ(got.first, ref.first) << "tile=" << tile;
    EXPECT_DOUBLE_EQ(got.second, ref.second) << "tile=" << tile;
  }
}

TEST(LoopChain, BoundaryAndRestrictedRangesTileExactly) {
  // Boundary loops (halo-extending range) and partial-range loops are
  // legal chain members: the first/last tiles absorb rows the interior
  // tile walk never visits, and restricted ranges clamp per tile.
  ops::Context ctx(serial());
  const long n = 20;
  ops::Block grid(ctx, "g", 2, {20, 20, 1});
  ops::Dat<double> a(grid, "a", 1, 2), b(grid, "b", 1, 2), c(grid, "c", 1, 2),
      d(grid, "d", 1, 2);
  for (long i = -2; i <= n + 1; ++i)
    for (long j = -2; j <= n + 1; ++j) a.at(i, j) = 0.05 * i * j - 0.3 * j;

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = in(0, 0) + 0.1 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  auto run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    d.fill(0.0);
    ops::Range ext = ops::Range::all(grid);
    ext.lo[0] = -1;  // one halo row each side, like an app halo update
    ext.hi[0] = n + 1;
    ops::Range mid = ops::Range::all(grid);
    mid.lo[0] = 3;
    mid.hi[0] = n - 4;
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"ext"}, ext, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"full"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"mid"}, mid, lap, ops::arg(d, ops::S_PT, ops::Acc::W),
                  ops::arg(c, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    return b.interior_sum() + 2.0 * c.interior_sum() + 4.0 * d.interior_sum();
  };
  const double ref = run(0);
  for (std::size_t tile : {1u, 2u, 5u, 7u, 20u}) {
    EXPECT_DOUBLE_EQ(run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, ThreeDChainTiledBitExact) {
  // 3D chain with mixed slow-dimension radii (1 then 2): the suffix
  // expansion runs along the slowest dimension only and must stay
  // bit-exact for every tiling, as in 2D.
  ops::Context ctx(serial());
  const long n = 12;
  ops::Block grid(ctx, "g", 3, {12, 12, 12});
  ops::Dat<double> a(grid, "a", 1, 2), b(grid, "b", 1, 2), c(grid, "c", 1, 2);
  for (long i = -2; i <= n + 1; ++i)
    for (long j = -2; j <= n + 1; ++j)
      for (long k = -2; k <= n + 1; ++k)
        a.at(i, j, k) = std::sin(0.2 * i + 0.3 * j - 0.1 * k);

  auto run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"s7"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0, 0) =
                        in(0, 0, 0) +
                        0.1 * (in(1, 0, 0) + in(-1, 0, 0) + in(0, 1, 0) +
                               in(0, -1, 0) + in(0, 0, 1) + in(0, 0, -1));
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S3D_7PT, ops::Acc::R));
    chain.enqueue({"s13"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0, 0) =
                        in(0, 0, 0) +
                        0.02 * (in(2, 0, 0) + in(-2, 0, 0) + in(0, 2, 0) +
                                in(0, -2, 0) + in(0, 0, 2) + in(0, 0, -2));
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::star(2, 3), ops::Acc::R));
    chain.execute(tile);
    return c.interior_sum();
  };
  const double ref = run(0);
  for (std::size_t tile : {1u, 2u, 3u, 5u, 12u}) {
    EXPECT_DOUBLE_EQ(run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, ReenqueueAfterThrownChainWorks) {
  // A kernel throw mid-execute must unwind cleanly: the queue clears on
  // the way out and the chain object stays usable for new work.
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {8, 8, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  a.fill(1.5);
  b.fill(0.0);
  c.fill(0.0);

  auto twice = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 2.0 * in(0, 0);
  };
  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"ok"}, twice, ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S_PT, ops::Acc::R));
  chain.enqueue({"boom"},
                [](ops::ACC<double> out, ops::ACC<double> in) {
                  if (in(0, 0) != 12345.0)
                    throw std::runtime_error("chain kernel failure");
                  out(0, 0) = in(0, 0);
                },
                ops::arg(c, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S_PT, ops::Acc::R));
  EXPECT_THROW(chain.execute(4), std::runtime_error);
  EXPECT_EQ(chain.size(), 0u) << "queue must clear on unwind";

  chain.enqueue({"ok2"}, twice, ops::arg(c, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S_PT, ops::Acc::R));
  chain.execute(0);
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_DOUBLE_EQ(c.interior_sum(), 2.0 * a.interior_sum());
}

TEST(LoopChain, ChainSiteNamesArePerComposition) {
  // Autotune site names derive from the captured composition: stable
  // (interned) for the same chain, distinct across compositions - no
  // more single shared "(loop_chain)" entry.
  namespace df = ops::dataflow;
  std::vector<df::Node> one(1);
  one[0].name = "alpha";
  one[0].hi = {8, 8, 1};
  std::vector<df::Node> two = one;
  two.push_back(one[0]);
  two[1].name = "beta";

  const char* n1 = df::intern_chain_name(one);
  EXPECT_EQ(n1, df::intern_chain_name(one)) << "interned pointer is stable";
  EXPECT_STRNE(n1, df::intern_chain_name(two));
  EXPECT_EQ(std::string_view(n1).substr(0, 7), "(chain:");

  std::vector<df::Node> shifted = one;  // same loops, other box
  shifted[0].hi = {16, 16, 1};
  EXPECT_STRNE(n1, df::intern_chain_name(shifted));
}

TEST(LoopChain, FusedScopeParityAcrossFusionModes) {
  // The capture front end must produce bit-identical results under
  // SYCLPORT_FUSION=off (eager reference), =on (pinned fuse), and
  // =auto (hwmodel decides; tuner is off here).
  ops::Context ctx(serial());
  const long n = 16;
  ops::Block grid(ctx, "g", 2, {16, 16, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = -1; i <= n; ++i)
    for (long j = -1; j <= n; ++j) a.at(i, j) = 0.1 * i + std::cos(0.2 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  auto run_mode = [&](const char* mode) {
    setenv("SYCLPORT_FUSION", mode, 1);
    b.fill(0.0);
    c.fill(0.0);
    ops::FusedScope fs(ctx, grid);
    EXPECT_EQ(fs.capturing(), std::string_view(mode) != "off");
    fs.loop({"s1"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
            ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    fs.loop({"s2"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
            ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    fs.flush();
    return c.interior_sum();
  };
  const double off = run_mode("off");
  EXPECT_DOUBLE_EQ(run_mode("on"), off);
  EXPECT_DOUBLE_EQ(run_mode("auto"), off);
  unsetenv("SYCLPORT_FUSION");
}

TEST(LoopChain, FusedChainReportsEliminatedBytes) {
  // Telemetry: a fused producer-consumer chain reports its name-level
  // fusable bound and a positive modeled elimination, bounded by it,
  // and the record lands in launch_log when logging is on.
  ops::Context ctx(serial());
  const long n = 32;
  ops::Block grid(ctx, "g", 2, {32, 32, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = -1; i <= n; ++i)
    for (long j = -1; j <= n; ++j) a.at(i, j) = 0.01 * (i + 2 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  auto& log = ::sycl::launch_log::instance();
  log.set_enabled(true);
  log.clear();
  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"e1"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S2D_5PT, ops::Acc::R));
  chain.enqueue({"e2"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                ops::arg(b, ops::S2D_5PT, ops::Acc::R));
  chain.execute(8, true);

  EXPECT_EQ(chain.last_segments(), 1u);
  EXPECT_TRUE(chain.last_fused());
  EXPECT_EQ(chain.last_tile(), 8u);
  // One internal edge (b): writeback + re-read round trip.
  const double interior = 32.0 * 32.0 * sizeof(double);
  EXPECT_DOUBLE_EQ(chain.last_fusable_bytes(), 2.0 * interior);
  EXPECT_GT(chain.last_eliminated_bytes(), 0.0);
  EXPECT_LE(chain.last_eliminated_bytes(), chain.last_fusable_bytes());

  const auto recs = log.fusions_snapshot();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].fused);
  EXPECT_EQ(recs[0].loops, 2u);
  EXPECT_DOUBLE_EQ(recs[0].eliminated_bytes, chain.last_eliminated_bytes());
  const auto stats = log.fusion_stats();
  EXPECT_EQ(stats.chains, 1u);
  EXPECT_DOUBLE_EQ(stats.eliminated_bytes, chain.last_eliminated_bytes());
  log.set_enabled(false);
  log.clear();
}

TEST(Fuzz, RandomChainShapesFusedEqualsUnfused) {
  // Random chain compositions mixing stencil writes (radius 0/1/2),
  // pointwise RW accumulation, in-place stencil RW, and reductions:
  // every dat (including halos) and every reduction must be
  // bit-identical between the unfused reference, a random forced tile,
  // and the default hwmodel-decided schedule.
  ops::Context ctx(serial());
  const long n = 14;
  ops::Block grid(ctx, "g", 2, {14, 14, 1});
  ops::Dat<double> d0(grid, "d0", 1, 2), d1(grid, "d1", 1, 2),
      d2(grid, "d2", 1, 2), d3(grid, "d3", 1, 2);
  ops::Dat<double>* dats[4] = {&d0, &d1, &d2, &d3};

  struct Op {
    int type;  // 0 copy, 1 star1, 2 star2, 3 rw-pointwise, 4 rw-stencil,
               // 5 reduction
    int dst;
    int src;
  };

  auto k_copy = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 1.01 * in(0, 0) + 0.1;
  };
  auto k_star1 = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = in(0, 0) + 0.3 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  auto k_star2 = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) =
        in(0, 0) + 0.05 * (in(2, 0) + in(-2, 0) + in(0, 2) + in(0, -2));
  };
  auto k_rwpt = [](ops::ACC<double> x, ops::ACC<double> in) {
    x(0, 0) = 0.7 * x(0, 0) + in(0, 0);
  };
  auto k_rwst = [](ops::ACC<double> x) {
    x(0, 0) = 0.5 * x(0, 0) + 0.125 * (x(1, 0) + x(-1, 0) + x(0, 1) + x(0, -1));
  };
  auto k_red = [](ops::ACC<double> x, ops::Reducer<double> r) {
    r += x(0, 1) - 0.5 * x(1, 0);
  };

  for (int trial = 0; trial < 30; ++trial) {
    std::mt19937 rng(777u + static_cast<unsigned>(trial));
    const double c1 = 0.1 + 0.01 * static_cast<double>(rng() % 40);
    const double c2 = 0.2 + 0.01 * static_cast<double>(rng() % 40);
    auto reinit = [&] {
      for (int k = 0; k < 4; ++k)
        for (long i = -2; i <= n + 1; ++i)
          for (long j = -2; j <= n + 1; ++j)
            dats[k]->at(i, j) = std::sin(c1 * i + c2 * j + k);
    };

    std::vector<Op> shape;
    const int len = 2 + static_cast<int>(rng() % 5);
    for (int l = 0; l < len; ++l) {
      Op op;
      const unsigned r = rng() % 10;
      op.type = r <= 1 ? 0 : r <= 4 ? 1 : r <= 6 ? 2 : static_cast<int>(r - 4);
      op.dst = static_cast<int>(rng() % 4);
      op.src = static_cast<int>(rng() % 4);
      if (op.src == op.dst) op.src = (op.dst + 1) % 4;
      shape.push_back(op);
    }

    auto build = [&](ops::LoopChain& chain, double& red) {
      for (const Op& op : shape) {
        ops::Dat<double>& dst = *dats[static_cast<std::size_t>(op.dst)];
        ops::Dat<double>& src = *dats[static_cast<std::size_t>(op.src)];
        switch (op.type) {
          case 0:
            chain.enqueue({"copy"}, k_copy, ops::arg(dst, ops::S_PT, ops::Acc::W),
                          ops::arg(src, ops::S_PT, ops::Acc::R));
            break;
          case 1:
            chain.enqueue({"star1"}, k_star1,
                          ops::arg(dst, ops::S_PT, ops::Acc::W),
                          ops::arg(src, ops::S2D_5PT, ops::Acc::R));
            break;
          case 2:
            chain.enqueue({"star2"}, k_star2,
                          ops::arg(dst, ops::S_PT, ops::Acc::W),
                          ops::arg(src, ops::star(2, 2), ops::Acc::R));
            break;
          case 3:
            chain.enqueue({"rwpt"}, k_rwpt,
                          ops::arg(dst, ops::S_PT, ops::Acc::RW),
                          ops::arg(src, ops::S_PT, ops::Acc::R));
            break;
          case 4:
            chain.enqueue({"rwst"}, k_rwst,
                          ops::arg(dst, ops::S2D_5PT, ops::Acc::RW));
            break;
          default:
            chain.enqueue({"red"}, k_red,
                          ops::arg(src, ops::S2D_5PT, ops::Acc::R),
                          ops::reduce(red, ops::RedOp::Sum));
            break;
        }
      }
    };

    auto snapshot = [&] {
      std::vector<double> s;
      for (int k = 0; k < 4; ++k)
        for (long i = -2; i <= n + 1; ++i)
          for (long j = -2; j <= n + 1; ++j) s.push_back(dats[k]->at(i, j));
      return s;
    };

    double red_ref = 0.0;
    reinit();
    {
      ops::LoopChain chain(ctx, grid);
      build(chain, red_ref);
      chain.execute(0);
    }
    const std::vector<double> ref = snapshot();

    const std::size_t tile = 1 + rng() % 12;
    for (int variant = 0; variant < 2; ++variant) {
      double red_got = 0.0;
      reinit();
      {
        ops::LoopChain chain(ctx, grid);
        build(chain, red_got);
        if (variant == 0)
          chain.execute(tile);
        else
          chain.execute();  // hwmodel-decided fuse + tile
      }
      const std::vector<double> got = snapshot();
      EXPECT_DOUBLE_EQ(red_got, red_ref)
          << "trial=" << trial << " variant=" << variant << " tile=" << tile;
      std::size_t bad = 0;
      for (std::size_t p = 0; p < ref.size(); ++p)
        if (ref[p] != got[p] && ++bad == 1)
          ADD_FAILURE() << "trial=" << trial << " variant=" << variant
                        << " tile=" << tile << " first mismatch at flat index "
                        << p << ": " << ref[p] << " vs " << got[p];
      EXPECT_EQ(bad, 0u) << "trial=" << trial << " variant=" << variant;
    }
  }
}
