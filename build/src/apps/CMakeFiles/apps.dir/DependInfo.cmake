
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/acoustic/acoustic.cpp" "src/apps/CMakeFiles/apps.dir/acoustic/acoustic.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/acoustic/acoustic.cpp.o.d"
  "/root/repo/src/apps/cloverleaf/cloverleaf2d.cpp" "src/apps/CMakeFiles/apps.dir/cloverleaf/cloverleaf2d.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/cloverleaf/cloverleaf2d.cpp.o.d"
  "/root/repo/src/apps/cloverleaf/cloverleaf3d.cpp" "src/apps/CMakeFiles/apps.dir/cloverleaf/cloverleaf3d.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/cloverleaf/cloverleaf3d.cpp.o.d"
  "/root/repo/src/apps/mgcfd/mesh.cpp" "src/apps/CMakeFiles/apps.dir/mgcfd/mesh.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/mgcfd/mesh.cpp.o.d"
  "/root/repo/src/apps/mgcfd/mesh_io.cpp" "src/apps/CMakeFiles/apps.dir/mgcfd/mesh_io.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/mgcfd/mesh_io.cpp.o.d"
  "/root/repo/src/apps/mgcfd/mgcfd.cpp" "src/apps/CMakeFiles/apps.dir/mgcfd/mgcfd.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/mgcfd/mgcfd.cpp.o.d"
  "/root/repo/src/apps/opensbli/opensbli.cpp" "src/apps/CMakeFiles/apps.dir/opensbli/opensbli.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/opensbli/opensbli.cpp.o.d"
  "/root/repo/src/apps/rtm/rtm.cpp" "src/apps/CMakeFiles/apps.dir/rtm/rtm.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/rtm/rtm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/stream.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sycl/CMakeFiles/minisycl.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/syclport_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/syclport_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
