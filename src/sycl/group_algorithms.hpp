#pragma once
/// \file group_algorithms.hpp
/// SYCL 2020 group algorithms: reduce_over_group, scans, broadcast and
/// vote functions. Implemented over per-thread exchange slots with
/// work-group barriers, so (as in SYCL) every work-item of the group
/// must reach each call.

#include <cstddef>

#include "runtime/fiber.hpp"
#include "sycl/item.hpp"
#include "sycl/sub_group.hpp"

namespace sycl {

template <typename T, int Dims, typename Op>
[[nodiscard]] T reduce_over_group(const group<Dims>& g, T x, Op op) {
  const std::size_t n = g.get_local_linear_range();
  const std::size_t lid = g.caller_local_linear_id();
  auto& slots = detail::shuffle_slots<T>(n);
  slots[lid] = x;
  syclport::rt::group_barrier();
  T acc = slots[0];
  for (std::size_t i = 1; i < n; ++i) acc = op(acc, slots[i]);
  syclport::rt::group_barrier();
  return acc;
}

template <typename T, int Dims>
[[nodiscard]] T group_broadcast(const group<Dims>& g, T x,
                                std::size_t source = 0) {
  const std::size_t n = g.get_local_linear_range();
  auto& slots = detail::shuffle_slots<T>(n);
  slots[g.caller_local_linear_id()] = x;
  syclport::rt::group_barrier();
  const T out = slots[source];
  syclport::rt::group_barrier();
  return out;
}

template <typename T, int Dims, typename Op>
[[nodiscard]] T inclusive_scan_over_group(const group<Dims>& g, T x, Op op) {
  const std::size_t n = g.get_local_linear_range();
  const std::size_t lid = g.caller_local_linear_id();
  auto& slots = detail::shuffle_slots<T>(n);
  slots[lid] = x;
  syclport::rt::group_barrier();
  T acc = slots[0];
  for (std::size_t i = 1; i <= lid; ++i) acc = op(acc, slots[i]);
  syclport::rt::group_barrier();
  return acc;
}

template <typename T, int Dims, typename Op>
[[nodiscard]] T exclusive_scan_over_group(const group<Dims>& g, T x, Op op,
                                          T init = T{}) {
  const std::size_t n = g.get_local_linear_range();
  const std::size_t lid = g.caller_local_linear_id();
  auto& slots = detail::shuffle_slots<T>(n);
  slots[lid] = x;
  syclport::rt::group_barrier();
  T acc = init;
  for (std::size_t i = 0; i < lid; ++i) acc = op(acc, slots[i]);
  syclport::rt::group_barrier();
  return acc;
}

template <int Dims>
[[nodiscard]] bool any_of_group(const group<Dims>& g, bool pred) {
  return reduce_over_group(g, pred ? 1 : 0,
                           [](int a, int b) { return a | b; }) != 0;
}

template <int Dims>
[[nodiscard]] bool all_of_group(const group<Dims>& g, bool pred) {
  return reduce_over_group(g, pred ? 1 : 0,
                           [](int a, int b) { return a & b; }) != 0;
}

/// Free-function group barrier, as in SYCL 2020.
template <int Dims>
void group_barrier(const group<Dims>&) {
  syclport::rt::group_barrier();
}

}  // namespace sycl
