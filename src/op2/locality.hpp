#pragma once
/// \file locality.hpp
/// Measured gather locality. The paper explains MG-CFD's strategy
/// ranking through cache-line behaviour: on the MI250X the atomics
/// version reads ~3500 bytes per 64-thread wave (91% L2 hits), global
/// colouring ~39000 bytes/wave (58%), hierarchical ~8600 (83%) - §4.3.
/// This module measures the same quantity on the *actual* mesh and
/// execution order: walk the order in sub_group-wide waves, count the
/// unique cache lines the indirect accesses of each wave touch, and
/// derive the line-traffic inflation factor the device model applies to
/// indirect bytes.

#include <array>
#include <cstddef>
#include <vector>

#include "hwmodel/loop_profile.hpp"
#include "op2/layout.hpp"
#include "op2/set.hpp"

namespace syclport::op2 {

struct GatherStats {
  double avg_bytes_per_wave = 0.0;  ///< unique lines x line size, averaged
  double ideal_bytes_per_wave = 0.0;///< unique targets x payload, averaged
  /// Total line traffic / unique data footprint - the multiplier on
  /// compulsory indirect traffic (>= 1), assuming a cold cache.
  double line_factor = 1.0;
  /// The same multiplier assuming an LRU window of
  /// hw::kGatherCachePoints[i] bytes (reuse-distance profile).
  std::array<double, hw::kGatherCachePoints.size()> factor_at{
      1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
};

/// Measure gather locality of accessing `dat_dim` x `elem_bytes` values
/// through every entry of `map`, executing elements in `order`, in
/// waves of `wave` work-items, with `line_bytes` transactions. `layout`
/// is the physical placement of the gathered dat: the byte addresses a
/// target's components occupy - and hence the lines a wave touches -
/// differ per layout (AoS packs a target in one or two lines; SoA
/// spreads it across dim distant lines but shares each line among
/// neighbouring targets).
[[nodiscard]] GatherStats measure_gather(const Map& map, int dat_dim,
                                         std::size_t elem_bytes,
                                         const std::vector<int>& order,
                                         std::size_t wave = 64,
                                         double line_bytes = 64.0,
                                         Layout layout = Layout::AoS);

/// The execution order a plan induces (identity for atomics, colour-
/// grouped for global colouring, block-colour-grouped for hierarchical).
[[nodiscard]] std::vector<int> execution_order(const struct Plan& plan);

}  // namespace syclport::op2
