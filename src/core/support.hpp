#pragma once
/// \file support.hpp
/// The support-and-quirk matrix. The paper's figures contain holes:
/// variants that failed to compile (internal compiler errors, mostly
/// OpenSYCL on CPU MG-CFD), crashed at run time, produced incorrect
/// results (CloverLeaf 2D with DPC++ flat and OpenSYCL on Genoa-X), or
/// are simply unavailable (DPC++ does not target the Ampere Altra;
/// Cray OpenMP offload fails on CloverLeaf 3D). These are empirical
/// facts about toolchains this reproduction cannot run, so they are
/// recorded as *data* here, and every layer that sweeps variants
/// consults this matrix. Each entry carries the paper reference that
/// justifies it.

#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace syclport {

/// Outcome of attempting to build + run a (platform, app, variant) cell.
enum class Status : std::uint8_t {
  Ok,           ///< compiled, ran, validated
  CompileFail,  ///< did not compile (e.g. internal compiler error)
  RuntimeCrash, ///< compiled but crashed during execution
  Incorrect,    ///< ran to completion but produced wrong results
  Unsupported,  ///< toolchain does not target this platform at all
};

[[nodiscard]] std::string_view to_string(Status s);

/// One cell of the support matrix with its provenance.
struct SupportEntry {
  PlatformId platform;
  AppId app;             ///< applies to this app...
  bool all_apps = false; ///< ...or to every app when set
  Variant variant;
  bool any_strategy = false; ///< match regardless of Strategy
  Status status = Status::Ok;
  std::string_view paper_ref; ///< sentence in the paper this encodes
};

/// Queries the paper-derived support matrix.
class SupportMatrix {
 public:
  /// The matrix encoding every failure/unavailability the paper reports.
  static const SupportMatrix& paper();

  /// Status of one experiment cell; Status::Ok unless listed.
  [[nodiscard]] Status status(PlatformId p, AppId a, const Variant& v) const;

  /// Convenience: does this cell run and validate?
  [[nodiscard]] bool ok(PlatformId p, AppId a, const Variant& v) const {
    return status(p, a, v) == Status::Ok;
  }

  /// All entries (for reporting / tests).
  [[nodiscard]] const std::vector<SupportEntry>& entries() const {
    return entries_;
  }

  /// Build an empty (everything-works) matrix, extensible in tests.
  SupportMatrix() = default;
  void add(SupportEntry e) { entries_.push_back(e); }

 private:
  std::vector<SupportEntry> entries_;
};

}  // namespace syclport
