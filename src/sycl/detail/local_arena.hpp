#pragma once
/// \file local_arena.hpp
/// Thread-local backing store for sycl::local_accessor. Work-items of a
/// work-group always execute on one OS thread (as fibers when barriers
/// are used), so per-thread storage keyed by the accessor's control
/// block gives correct SYCL local-memory semantics: shared within a
/// group, reset between groups.

#include <cstddef>

namespace sycl::detail {

/// Returns the group-local allocation for `key`, creating it
/// zero-initialized on first use within the current group.
void* local_alloc(const void* key, std::size_t bytes);

/// Drops all group-local allocations on the calling thread; the
/// executor calls this before each work-group starts.
void local_reset();

}  // namespace sycl::detail
