#pragma once
/// \file session.hpp
/// A client session of the study service: the handle one tenant holds.
/// Sessions submit requests to a shared Service and receive replies
/// whose result bytes are copied into a per-session arena backed by
/// rt::mem - the service's cache blobs stay shared and immutable, while
/// every tenant owns the lifetime of its own copies (freed wholesale
/// when the session ends, the arena idiom). A session is owned by one
/// client thread; the Service underneath is the concurrent object.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "study/service.hpp"

namespace syclport::study {

class Session {
 public:
  /// Attach to a service. `name` labels the session in diagnostics.
  explicit Session(Service& svc, std::string name = "");
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// One completed request as the tenant sees it.
  struct Reply {
    ExperimentResult result;
    /// The serialized result, copied into this session's arena: valid
    /// until the session is destroyed, independent of the service.
    std::span<const unsigned char> bytes;
    bool cache_hit = false;
    bool coalesced = false;
    /// Degraded mode: the service's fresh compute kept faulting and
    /// this is the last good cached result (docs/service.md).
    bool stale = false;
    double latency_ms = 0.0;
  };

  /// Submit without blocking; returns a handle for finish(). A session
  /// may keep any number of requests in flight.
  [[nodiscard]] std::size_t submit(const StudyRequest& q);

  /// Block until the submitted request completes; throws the typed
  /// service_error on failure. Each handle may be finished once.
  Reply finish(std::size_t handle);

  /// Synchronous convenience: submit + finish.
  Reply query(const StudyRequest& q);

  /// Per-session accounting.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;      ///< typed-error completions observed
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t stale = 0;       ///< degraded-mode stale replies
    std::size_t arena_bytes = 0;   ///< live bytes held by reply copies
    std::size_t arena_blocks = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  /// Copy `bytes` into a fresh rt::mem block owned by this session.
  [[nodiscard]] std::span<const unsigned char> arena_copy(
      std::span<const unsigned char> bytes);

  Service& svc_;
  std::string name_;
  std::vector<std::shared_ptr<Ticket>> pending_;
  std::vector<void*> arena_;  ///< rt::mem blocks, freed at destruction
  Stats stats_;
};

}  // namespace syclport::study
