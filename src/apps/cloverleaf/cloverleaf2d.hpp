#pragma once
/// \file cloverleaf2d.hpp
/// CloverLeaf 2D mini-app (paper §3, item 1): compressible Eulerian
/// hydrodynamics on a staggered structured grid. Reproduces the
/// kernel structure that drives CloverLeaf's performance profile: an
/// EoS kernel, artificial viscosity, a dt reduction, PdV work,
/// acceleration, flux computation, two-sweep donor-cell advection of
/// cell and momentum quantities, field reset, per-field halo-update
/// boundary loops (the launch-latency-sensitive part the paper
/// dissects), and a field-summary reduction.

#include "apps/common.hpp"
#include "ops/ops.hpp"

namespace syclport::apps {

/// Paper configuration: 7680^2 cells, 50 iterations, double precision.
[[nodiscard]] inline ProblemSize cloverleaf2d_paper() {
  return {{7680, 7680, 1}, 50};
}

/// Reduced configuration for functional validation runs.
[[nodiscard]] inline ProblemSize cloverleaf2d_small() {
  return {{48, 48, 1}, 4};
}

/// Run the hydro cycle; checksum combines total mass and total energy.
[[nodiscard]] RunSummary run_cloverleaf2d(const ops::Options& opt,
                                          ProblemSize ps);

}  // namespace syclport::apps
