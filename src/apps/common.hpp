#pragma once
/// \file common.hpp
/// Shared vocabulary of the benchmark applications: problem sizes, run
/// summaries, and the registry the study harness sweeps over.

#include <array>
#include <cstddef>
#include <vector>

#include "hwmodel/loop_profile.hpp"

namespace syclport::apps {

/// A problem instance: grid extents (slowest dim first; unused dims 1)
/// and time iterations.
struct ProblemSize {
  std::array<std::size_t, 3> grid{1, 1, 1};
  int iters = 1;
};

/// Everything one application run yields: a validation checksum from
/// the functional execution (0 in ModelOnly runs) and the par_loop
/// profiles in program order, covering all iterations.
struct RunSummary {
  double checksum = 0.0;
  std::vector<hw::LoopProfile> profiles;

  [[nodiscard]] double useful_bytes() const {
    double s = 0.0;
    for (const auto& p : profiles) s += p.total_bytes();
    return s;
  }
};

}  // namespace syclport::apps
