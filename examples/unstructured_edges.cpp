// unstructured_edges: the OP2 workflow on an airfoil-style unstructured
// problem - a damped edge-relaxation solver over the rotor-like mesh -
// demonstrating the three race-resolution strategies of Figure 1
// (atomics, global colouring, hierarchical colouring), their measured
// gather locality, and their identical numerics.
//
// Build & run:  ./build/examples/unstructured_edges

#include <cmath>
#include <cstdio>

#include "apps/mgcfd/mesh.hpp"
#include "op2/op2.hpp"

namespace op2 = syclport::op2;
using namespace syclport;

namespace {

/// Edge relaxation: every edge pushes its endpoints toward each other.
double relax(op2::Context& ctx, apps::mgcfd::MultigridMesh& mesh, int iters) {
  auto& nodes = *mesh.levels[0].nodes;
  auto& edges = *mesh.levels[0].edges;
  auto& e2n = *mesh.levels[0].e2n;

  op2::Dat<double> value(nodes, 1, "value");
  op2::Dat<double> delta(nodes, 1, "delta");
  for (std::size_t i = 0; i < nodes.size(); ++i)
    value.at(i) = std::sin(0.01 * static_cast<double>(i));

  for (int it = 0; it < iters; ++it) {
    op2::par_loop(ctx, {"edge_relax", 4.0}, edges,
                  [](const double* va, const double* vb, op2::Inc<double> da,
                     op2::Inc<double> db) {
                    const double f = 0.05 * (vb[0] - va[0]);
                    da.add(0, f);
                    db.add(0, -f);
                  },
                  op2::arg_indirect(value, e2n, 0, op2::Acc::R),
                  op2::arg_indirect(value, e2n, 1, op2::Acc::R),
                  op2::arg_inc(delta, e2n, 0), op2::arg_inc(delta, e2n, 1));
    op2::par_loop(ctx, {"apply", 2.0}, nodes,
                  [](double* v, double* d) {
                    v[0] += d[0];
                    d[0] = 0.0;
                  },
                  op2::arg_direct(value, op2::Acc::RW),
                  op2::arg_direct(delta, op2::Acc::RW));
  }
  return value.sum();
}

}  // namespace

int main() {
  std::printf("edge relaxation on the rotor-like mesh (32x28x20, deg ~14)\n\n");
  auto mesh = apps::mgcfd::build_rotor_mesh(32, 28, 20, 1);
  std::printf("nodes %zu, edges %zu\n\n", mesh.fine_nodes(),
              mesh.fine_edges());

  for (Strategy s : kMgcfdStrategies) {
    op2::Options o;
    o.strategy = s;
    o.block_size = 256;
    op2::Context ctx(o);
    auto mesh_run = apps::mgcfd::build_rotor_mesh(32, 28, 20, 1);
    const double checksum = relax(ctx, mesh_run, 10);

    // Plan + locality summary, the inputs to Figure 8/9's model.
    const auto& plan = ctx.plan_for(*mesh_run.levels[0].e2n);
    const auto& gs = ctx.gather_for(*mesh_run.levels[0].e2n, 1, 8);
    std::printf("%-13s checksum=%.8f  sweeps/loop=%zu  bytes/wave=%.0f\n",
                std::string(to_string(s)).c_str(), checksum, plan.launches(),
                gs.avg_bytes_per_wave);
  }

  std::printf(
      "\nAll three strategies produce the same physics; they differ in\n"
      "parallel sweeps per loop and in gather locality - exactly the\n"
      "trade-off behind the paper's Figure 8/9 rankings.\n");
  return 0;
}
