
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/comm_model.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/comm_model.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/comm_model.cpp.o.d"
  "/root/repo/src/hwmodel/device_model.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/device_model.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/device_model.cpp.o.d"
  "/root/repo/src/hwmodel/energy.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/energy.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/energy.cpp.o.d"
  "/root/repo/src/hwmodel/exec_profile.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/exec_profile.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/exec_profile.cpp.o.d"
  "/root/repo/src/hwmodel/memory_model.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/memory_model.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/memory_model.cpp.o.d"
  "/root/repo/src/hwmodel/platform.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/platform.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/platform.cpp.o.d"
  "/root/repo/src/hwmodel/quirks.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/quirks.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/quirks.cpp.o.d"
  "/root/repo/src/hwmodel/workgroup.cpp" "src/hwmodel/CMakeFiles/hwmodel.dir/workgroup.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hwmodel.dir/workgroup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/syclport_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
