// Unit tests for the mini-MPI substrate: point-to-point messaging,
// collectives, Cartesian decomposition and halo exchange.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/halo.hpp"

namespace mpi = syclport::mpi;

TEST(Comm, RankAndSize) {
  std::atomic<int> sum{0};
  mpi::run(4, [&](mpi::Comm& c) {
    EXPECT_EQ(c.size(), 4);
    sum.fetch_add(c.rank());
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(Comm, PingPong) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      int v = 42;
      c.send(1, 7, v);
      int back = 0;
      c.recv(1, 8, back);
      EXPECT_EQ(back, 43);
    } else {
      int v = 0;
      c.recv(0, 7, v);
      v += 1;
      c.send(0, 8, v);
    }
  });
}

TEST(Comm, TagsKeepMessagesApart) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, 111);
      c.send(1, 2, 222);
    } else {
      int b = 0, a = 0;
      c.recv(0, 2, b);  // receive out of send order
      c.recv(0, 1, a);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(Comm, FifoPerSourceAndTag) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, 5, i);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        c.recv(0, 5, v);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Comm, VectorPayload) {
  mpi::run(2, [](mpi::Comm& c) {
    std::vector<double> data(100);
    if (c.rank() == 0) {
      std::iota(data.begin(), data.end(), 0.0);
      c.send(1, 3, std::span<const double>(data));
    } else {
      c.recv(0, 3, std::span<double>(data));
      for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST(Comm, SizeMismatchThrows) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& c) {
                          if (c.rank() == 0) {
                            int v = 1;
                            c.send(1, 9, v);
                          } else {
                            double d;
                            c.recv(0, 9, d);  // 4 bytes sent, 8 expected
                          }
                        }),
               std::length_error);
}

TEST(Comm, AllreduceSumMinMax) {
  mpi::run(5, [](mpi::Comm& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduce(mine, mpi::Op::Sum), 15.0);
    EXPECT_DOUBLE_EQ(c.allreduce(mine, mpi::Op::Min), 1.0);
    EXPECT_DOUBLE_EQ(c.allreduce(mine, mpi::Op::Max), 5.0);
  });
}

TEST(Comm, RepeatedCollectivesDoNotInterfere) {
  mpi::run(3, [](mpi::Comm& c) {
    for (int round = 1; round <= 10; ++round) {
      const int s = c.allreduce(round * (c.rank() + 1), mpi::Op::Sum);
      EXPECT_EQ(s, round * 6);
    }
  });
}

TEST(Comm, Allgather) {
  mpi::run(4, [](mpi::Comm& c) {
    auto all = c.allgather(c.rank() * 10);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
  });
}

TEST(Comm, BarrierOrdersPhases) {
  std::atomic<int> phase1{0};
  mpi::run(4, [&](mpi::Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    EXPECT_EQ(phase1.load(), 4);
  });
}

TEST(Cart, GridCoversAllRanks) {
  for (int n : {1, 2, 6, 8, 12, 64}) {
    std::vector<int> seen;
    for (int r = 0; r < n; ++r) {
      mpi::CartDecomp cart(r, n, 3);
      EXPECT_EQ(cart.grid()[0] * cart.grid()[1] * cart.grid()[2], n);
    }
  }
}

TEST(Cart, NeighbourSymmetry) {
  const int n = 12;
  for (int r = 0; r < n; ++r) {
    mpi::CartDecomp cart(r, n, 2);
    for (int d = 0; d < 2; ++d)
      for (int dir : {-1, 1}) {
        const int nb = cart.neighbour(d, dir);
        if (nb < 0) continue;
        mpi::CartDecomp other(nb, n, 2);
        EXPECT_EQ(other.neighbour(d, -dir), r);
      }
  }
}

TEST(Cart, OwnedRangesPartitionGlobal) {
  const int n = 6;
  const std::size_t global = 100;
  for (int d = 0; d < 2; ++d) {
    std::size_t covered = 0, prev_end = 0;
    // Walk ranks in grid order along dimension d with the others at 0.
    mpi::CartDecomp probe(0, n, 2);
    const int gd = probe.grid()[static_cast<std::size_t>(d)];
    for (int c = 0; c < gd; ++c) {
      // Find a rank with coords[d] == c and other coord 0.
      for (int r = 0; r < n; ++r) {
        mpi::CartDecomp cart(r, n, 2);
        if (cart.coords()[static_cast<std::size_t>(d)] != c) continue;
        if (cart.coords()[static_cast<std::size_t>(1 - d)] != 0) continue;
        auto [b, e] = cart.owned(d, global);
        EXPECT_EQ(b, prev_end);
        prev_end = e;
        covered += e - b;
        break;
      }
    }
    EXPECT_EQ(covered, global);
  }
}

TEST(Halo, ExchangeFillsGhostsWithNeighbourValues2D) {
  // Each rank fills its interior with its rank id; after the exchange,
  // ghost layers must equal the owning neighbour's id.
  const int nranks = 4;
  mpi::run(nranks, [&](mpi::Comm& c) {
    mpi::CartDecomp cart(c.rank(), nranks, 2);
    mpi::LocalField<double> f;
    f.dims = 2;
    f.local = {6, 6, 1};
    f.halo = 2;
    f.allocate();
    for (std::ptrdiff_t i = 0; i < 6; ++i)
      for (std::ptrdiff_t j = 0; j < 6; ++j)
        f.at(i, j) = static_cast<double>(c.rank());

    mpi::exchange_halos(c, cart, f);

    for (int d = 0; d < 2; ++d)
      for (int dir : {-1, 1}) {
        const int nb = cart.neighbour(d, dir);
        if (nb < 0) continue;
        // Probe one ghost point adjacent to the middle of that face.
        std::ptrdiff_t i = 3, j = 3;
        (d == 0 ? i : j) = dir < 0 ? -1 : 6;
        EXPECT_DOUBLE_EQ(f.at(i, j), static_cast<double>(nb))
            << "rank " << c.rank() << " dim " << d << " dir " << dir;
      }
  });
}

TEST(Halo, ThreeDimensionalExchange) {
  const int nranks = 8;
  mpi::run(nranks, [&](mpi::Comm& c) {
    mpi::CartDecomp cart(c.rank(), nranks, 3);
    mpi::LocalField<float> f;
    f.dims = 3;
    f.local = {4, 4, 4};
    f.halo = 1;
    f.allocate();
    for (std::ptrdiff_t i = 0; i < 4; ++i)
      for (std::ptrdiff_t j = 0; j < 4; ++j)
        for (std::ptrdiff_t k = 0; k < 4; ++k)
          f.at(i, j, k) = static_cast<float>(c.rank());
    mpi::exchange_halos(c, cart, f);
    for (int d = 0; d < 3; ++d)
      for (int dir : {-1, 1}) {
        const int nb = cart.neighbour(d, dir);
        if (nb < 0) continue;
        std::ptrdiff_t idx[3] = {2, 2, 2};
        idx[d] = dir < 0 ? -1 : 4;
        EXPECT_FLOAT_EQ(f.at(idx[0], idx[1], idx[2]), static_cast<float>(nb));
      }
  });
}

TEST(Halo, GlobalStencilSumMatchesSerial) {
  // Distributed 1-ring sum over a 2D grid must equal the serial result:
  // the classic halo-coherence property test.
  const std::size_t N = 12;
  std::vector<double> global(N * N);
  for (std::size_t i = 0; i < N * N; ++i)
    global[i] = static_cast<double>((i * 7919) % 101);

  // Serial reference: interior 5-point sums.
  auto ref = [&](std::size_t i, std::size_t j) {
    return global[i * N + j] + global[(i - 1) * N + j] + global[(i + 1) * N + j] +
           global[i * N + j - 1] + global[i * N + j + 1];
  };

  const int nranks = 4;
  std::mutex mu;
  double dist_total = 0.0;
  mpi::run(nranks, [&](mpi::Comm& c) {
    mpi::CartDecomp cart(c.rank(), nranks, 2);
    auto [ib, ie] = cart.owned(0, N);
    auto [jb, je] = cart.owned(1, N);
    mpi::LocalField<double> f;
    f.dims = 2;
    f.local = {ie - ib, je - jb, 1};
    f.halo = 1;
    f.allocate();
    for (std::size_t i = ib; i < ie; ++i)
      for (std::size_t j = jb; j < je; ++j)
        f.at(static_cast<std::ptrdiff_t>(i - ib),
             static_cast<std::ptrdiff_t>(j - jb)) = global[i * N + j];
    mpi::exchange_halos(c, cart, f);

    double local_sum = 0.0;
    for (std::size_t i = std::max<std::size_t>(ib, 1); i < std::min(ie, N - 1); ++i)
      for (std::size_t j = std::max<std::size_t>(jb, 1); j < std::min(je, N - 1); ++j) {
        const auto li = static_cast<std::ptrdiff_t>(i - ib);
        const auto lj = static_cast<std::ptrdiff_t>(j - jb);
        local_sum += f.at(li, lj) + f.at(li - 1, lj) + f.at(li + 1, lj) +
                     f.at(li, lj - 1) + f.at(li, lj + 1);
      }
    const double total = c.allreduce(local_sum, mpi::Op::Sum);
    std::lock_guard lock(mu);
    dist_total = total;
  });

  double serial = 0.0;
  for (std::size_t i = 1; i < N - 1; ++i)
    for (std::size_t j = 1; j < N - 1; ++j) serial += ref(i, j);
  EXPECT_DOUBLE_EQ(dist_total, serial);
}

TEST(Comm, NonBlockingSendRecv) {
  mpi::run(2, [](mpi::Comm& c) {
    std::vector<double> out(16), in(16);
    for (int i = 0; i < 16; ++i) out[static_cast<std::size_t>(i)] = c.rank() * 100.0 + i;
    auto sreq = c.isend(1 - c.rank(), 5, std::span<const double>(out));
    auto rreq = c.irecv(1 - c.rank(), 5, std::span<double>(in));
    EXPECT_TRUE(rreq.pending());
    sreq.wait();
    rreq.wait();
    EXPECT_FALSE(rreq.pending());
    for (int i = 0; i < 16; ++i)
      EXPECT_DOUBLE_EQ(in[static_cast<std::size_t>(i)],
                       (1 - c.rank()) * 100.0 + i);
  });
}

TEST(Comm, WaitallCompletesManyRequests) {
  mpi::run(4, [](mpi::Comm& c) {
    // Ring exchange posted entirely with non-blocking calls.
    const int next = (c.rank() + 1) % 4;
    const int prev = (c.rank() + 3) % 4;
    int out = c.rank() * 7, in = -1;
    std::vector<mpi::Comm::Request> reqs;
    reqs.push_back(c.isend(next, 8, std::span<const int>(&out, 1)));
    reqs.push_back(c.irecv(prev, 8, std::span<int>(&in, 1)));
    mpi::Comm::waitall(reqs);
    EXPECT_EQ(in, prev * 7);
  });
}

TEST(Halo, SplitExchangeOverlapsInteriorMutation) {
  // Begin/finish split: the sends are packed at construction, so
  // mutating the interior between the two phases must not corrupt what
  // the neighbours receive, and finish() must fill the ghosts with the
  // *pre-begin* face values.
  const int nranks = 4;
  const std::size_t ng = 8;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    mpi::CartDecomp cart(comm.rank(), nranks, 2);
    const auto own0 = cart.owned(0, ng);
    const auto own1 = cart.owned(1, ng);
    mpi::LocalField<double> f;
    f.dims = 2;
    f.local = {own0.second - own0.first, own1.second - own1.first, 1};
    f.halo = 1;
    f.allocate();
    auto value = [&](std::ptrdiff_t i, std::ptrdiff_t j) {
      return 100.0 * (static_cast<double>(own0.first) +
                      static_cast<double>(i)) +
             static_cast<double>(own1.first) + static_cast<double>(j);
    };
    for (std::size_t i = 0; i < f.local[0]; ++i)
      for (std::size_t j = 0; j < f.local[1]; ++j)
        f.at(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j)) =
            value(static_cast<std::ptrdiff_t>(i),
                  static_cast<std::ptrdiff_t>(j));

    mpi::HaloExchange<double> ex(comm, cart, f);
    // Overlap window: clobber the whole interior.
    for (std::size_t i = 0; i < f.local[0]; ++i)
      for (std::size_t j = 0; j < f.local[1]; ++j)
        f.at(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j)) =
            -999.0;
    ex.finish();

    // Ghosts hold the neighbour's original (pre-begin) face values,
    // which extend the global numbering across the block boundary.
    const auto ni = static_cast<std::ptrdiff_t>(f.local[0]);
    const auto nj = static_cast<std::ptrdiff_t>(f.local[1]);
    if (cart.neighbour(0, -1) >= 0)
      for (std::ptrdiff_t j = 0; j < nj; ++j)
        EXPECT_DOUBLE_EQ(f.at(-1, j), value(-1, j));
    if (cart.neighbour(0, +1) >= 0)
      for (std::ptrdiff_t j = 0; j < nj; ++j)
        EXPECT_DOUBLE_EQ(f.at(ni, j), value(ni, j));
    if (cart.neighbour(1, -1) >= 0)
      for (std::ptrdiff_t i = 0; i < ni; ++i)
        EXPECT_DOUBLE_EQ(f.at(i, -1), value(i, -1));
    if (cart.neighbour(1, +1) >= 0)
      for (std::ptrdiff_t i = 0; i < ni; ++i)
        EXPECT_DOUBLE_EQ(f.at(i, nj), value(i, nj));
  });
}

TEST(Comm, RunAggregatesMultipleRankFailures) {
  // Two ranks die with unrelated primaries; the others block in a
  // barrier and are released as PeerFailed cascades, which run()
  // filters out before reporting. The aggregate error names each
  // genuinely failing rank.
  try {
    mpi::run(4, [](mpi::Comm& c) {
      if (c.rank() == 0) throw std::runtime_error("rank0 exploded");
      if (c.rank() == 2) throw std::invalid_argument("rank2 exploded");
      c.barrier();
    });
    FAIL() << "expected rank_errors";
  } catch (const mpi::rank_errors& e) {
    ASSERT_EQ(e.entries().size(), 2u);
    EXPECT_EQ(e.entries()[0].rank, 0);
    EXPECT_EQ(e.entries()[1].rank, 2);
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos);
    EXPECT_NE(what.find("rank 2"), std::string::npos);
    EXPECT_NE(what.find("rank0 exploded"), std::string::npos);
    EXPECT_NE(what.find("rank2 exploded"), std::string::npos);
    // The per-rank exceptions survive with their original types.
    EXPECT_THROW(std::rethrow_exception(e.entries()[0].error),
                 std::runtime_error);
    EXPECT_THROW(std::rethrow_exception(e.entries()[1].error),
                 std::invalid_argument);
  }
}

TEST(Comm, SingleRankFailureKeepsItsOriginalType) {
  // One genuine failure among blocked peers is rethrown as-is, not
  // wrapped - callers keep their existing catch sites.
  EXPECT_THROW(mpi::run(3,
                        [](mpi::Comm& c) {
                          if (c.rank() == 1)
                            throw std::out_of_range("solo failure");
                          double v = 0.0;
                          c.recv((c.rank() + 1) % 3, 5, v);
                        }),
               std::out_of_range);
}
