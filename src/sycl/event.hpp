#pragma once
/// \file event.hpp
/// miniSYCL event. A synchronous submission (in-order queue, or an
/// out-of-order queue command group with no declared footprint) yields
/// a completed event carrying its host wall time; an asynchronous one
/// wraps the scheduled Command, and wait() becomes a real
/// synchronization point that also rethrows the kernel's exception.

#include <memory>
#include <utility>

#include "sycl/detail/scheduler.hpp"

namespace sycl {

class event {
 public:
  /// An already-complete event (default construction, sync submits).
  event() = default;
  explicit event(double host_seconds) : host_seconds_(host_seconds) {}
  /// An event tracking an in-flight command.
  explicit event(std::shared_ptr<detail::Command> cmd)
      : cmd_(std::move(cmd)) {}

  /// Block until the command completes. If its kernels threw, the first
  /// exception is rethrown here (consuming it: later waits and
  /// queue::wait_and_throw will not see it again).
  void wait() const {
    if (!cmd_) return;
    auto& s = detail::Scheduler::instance();
    s.wait_command(cmd_);
    if (auto e = s.consume_error(cmd_.get())) std::rethrow_exception(e);
  }

  /// Host wall-clock seconds spent executing the command group (waits
  /// for completion first; does not consume a stored exception).
  [[nodiscard]] double host_seconds() const {
    if (!cmd_) return host_seconds_;
    detail::Scheduler::instance().wait_command(cmd_);
    return cmd_->profile.end_seconds - cmd_->profile.start_seconds;
  }

  /// Scheduling timestamps / DAG counters (waits for completion first).
  /// Synchronous events report an empty profile.
  [[nodiscard]] detail::CommandProfile profile() const {
    if (!cmd_) return detail::CommandProfile{};
    detail::Scheduler::instance().wait_command(cmd_);
    return cmd_->profile;
  }

  /// The underlying command, if this event is asynchronous
  /// (implementation detail, used by handler::depends_on).
  [[nodiscard]] const std::shared_ptr<detail::Command>& command() const {
    return cmd_;
  }

 private:
  std::shared_ptr<detail::Command> cmd_;
  double host_seconds_ = 0.0;
};

}  // namespace sycl
