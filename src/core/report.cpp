#include "core/report.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace syclport::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      os << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

void render_bars(std::ostream& os, const std::vector<BarGroup>& groups,
                 const std::string& unit, int width) {
  double vmax = 0.0;
  std::size_t lmax = 0;
  for (const auto& g : groups)
    for (const auto& b : g.bars) {
      vmax = std::max(vmax, b.value);
      lmax = std::max(lmax, b.label.size());
    }
  if (vmax <= 0.0) vmax = 1.0;

  for (const auto& g : groups) {
    os << g.title << "\n";
    for (const auto& b : g.bars) {
      os << "  " << std::left << std::setw(static_cast<int>(lmax)) << b.label
         << " |";
      if (b.value <= 0.0) {
        os << " (" << (b.note.empty() ? "n/a" : b.note) << ")\n";
        continue;
      }
      const int n = std::max(
          1, static_cast<int>(b.value / vmax * static_cast<double>(width)));
      os << std::string(static_cast<std::size_t>(n), '#') << " "
         << fmt(b.value) << " " << unit;
      if (!b.note.empty()) os << "  (" << b.note << ")";
      os << "\n";
    }
    os << "\n";
  }
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace syclport::report
