#include "hwmodel/workgroup.hpp"

#include <algorithm>

namespace syclport::hw {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Halve a desired extent until at most one partial group is padded
/// (tuned launches never over-pad narrow loops).
std::size_t clamp_pow2(std::size_t want, std::size_t extent) {
  while (want > 1 && want > extent * 2) want /= 2;
  return want;
}

}  // namespace

double padding_utilization(const std::array<std::size_t, 3>& extent,
                           const std::array<std::size_t, 3>& local, int dims) {
  double items = 1.0, padded = 1.0;
  for (int d = 0; d < dims; ++d) {
    const auto e = extent[static_cast<std::size_t>(d)];
    const auto l = std::max<std::size_t>(1, local[static_cast<std::size_t>(d)]);
    items *= static_cast<double>(e);
    padded *= static_cast<double>(ceil_div(e, l) * l);
  }
  return padded > 0.0 ? items / padded : 1.0;
}

double coalescing_factor(std::size_t local_fast, std::size_t elem_bytes,
                         double line_bytes) {
  const double useful = static_cast<double>(local_fast * elem_bytes);
  if (useful >= line_bytes) return 1.0;
  const double floor = static_cast<double>(elem_bytes) / line_bytes;
  return std::max(floor, useful / line_bytes);
}

WgChoice choose_workgroup(const Platform& hw, const Variant& v,
                          const LoopProfile& lp) {
  WgChoice c;  // degenerate {1,1,1}: CPU backends iterate directly
  if (!hw.gpu) return c;

  const int dims = lp.dims;
  const std::size_t fast = static_cast<std::size_t>(dims - 1);
  const auto& ext = lp.extent;
  auto set = [&](std::size_t slow, std::size_t mid, std::size_t fst) {
    c.local = {1, 1, 1};
    if (dims == 1) {
      c.local[0] = fst;
    } else if (dims == 2) {
      c.local[0] = mid;
      c.local[1] = fst;
    } else {
      c.local[0] = slow;
      c.local[1] = mid;
      c.local[2] = fst;
    }
  };

  switch (v.model) {
    case Model::SYCLFlat:
      if (v.toolchain == Toolchain::DPCPP) {
        // DPC++/OpenCL heuristic: a fixed 256-wide group along the
        // fastest dimension, padding whatever does not fit. Interior
        // loops coalesce perfectly; narrow (boundary-column) loops
        // waste almost the whole group.
        set(1, 1, 256);
      } else {
        // OpenSYCL heuristic: fixed square-ish tiles.
        set(4, dims == 2 ? 16 : 8, dims == 1 ? 64 : dims == 2 ? 16 : 8);
      }
      break;
    case Model::SYCLNDRange:
    case Model::CUDA:
    case Model::HIP:
      // Tuned: one shape per application (paper §3); wide along the
      // fastest dimension, clamped so narrow loops are not over-padded.
      set(1, clamp_pow2(4, dims >= 2 ? ext[static_cast<std::size_t>(dims - 2)] : 1),
          clamp_pow2(dims == 1 ? 256 : 64, ext[fast]));
      break;
    case Model::OpenMPOffload:
      // Teams/threads runtime default: 128 linear along the fastest dim.
      set(1, 1, 128);
      break;
    default:
      return c;  // CPU models never launch GPU work-groups in the study
  }

  c.utilization = padding_utilization(ext, c.local, dims);
  c.coalescing =
      coalescing_factor(c.local[fast], lp.elem_bytes, hw.line_bytes);
  return c;
}

}  // namespace syclport::hw
