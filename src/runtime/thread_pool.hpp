#pragma once
/// \file thread_pool.hpp
/// Low-overhead execution substrate for the miniSYCL SIMT executor and
/// the OpenMP-like native backends.
///
/// Three chunk-distribution policies are supported (SYCLPORT_SCHEDULE):
///  - static  : chunks pre-split evenly over the workers, no re-balancing;
///  - dynamic : one shared atomic counter, chunk-at-a-time self-scheduling
///              (the original seed behaviour - every claim contends on one
///              cache line);
///  - steal   : per-worker chunk ranges (cache-line padded, packed into a
///              single 64-bit word) with steal-half rebalancing - owners
///              pop from the front of their own range, idle workers CAS
///              half off the back of a victim's range (default).
///
/// Launches are zero-allocation: the templated run_chunks/parallel_for
/// pass the callable by address through a function-pointer trampoline
/// whose chunk loop invokes it inline - no std::function is constructed
/// and no per-chunk type-erased call is made. The std::function overloads
/// remain as thin wrappers for type-erased callers.
///
/// Workers spin briefly before parking on a condition variable so that
/// back-to-back kernel launches (the common pattern in the apps) skip the
/// condvar wake latency entirely.
///
/// The calling thread participates as worker 0, so a pool of size 1
/// degenerates to serial execution without deadlock. A launch issued from
/// inside a running chunk (re-entrant submission) executes inline and
/// serially on the calling worker.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

namespace syclport::rt {

/// Chunk-distribution policy (see file comment).
enum class Schedule : std::uint8_t { Static, Dynamic, Steal };

/// Parse "static" | "dynamic" | "steal" (case-sensitive).
[[nodiscard]] std::optional<Schedule> parse_schedule(std::string_view s) noexcept;
[[nodiscard]] const char* to_string(Schedule s) noexcept;

/// Process-wide launch configuration. Initialised on first use from the
/// SYCLPORT_SCHEDULE and SYCLPORT_GRAIN environment variables.
struct LaunchParams {
  Schedule schedule = Schedule::Steal;
  std::size_t grain = 1;  ///< minimum iterations per chunk in parallel_for
};

[[nodiscard]] LaunchParams launch_params() noexcept;
void set_launch_params(const LaunchParams& p) noexcept;

/// RAII override of the process launch params; ops::par_loop uses this to
/// thread per-context scheduling knobs through sycl::handler, which reads
/// the process params at submit time.
class ScopedLaunchParams {
 public:
  ScopedLaunchParams(std::optional<Schedule> schedule,
                     std::optional<std::size_t> grain) noexcept;
  ~ScopedLaunchParams();
  ScopedLaunchParams(const ScopedLaunchParams&) = delete;
  ScopedLaunchParams& operator=(const ScopedLaunchParams&) = delete;

 private:
  LaunchParams saved_;
};

/// RAII: while alive, every launch issued *from this thread* runs
/// serially on it, as if the pool had one worker. The miniSYCL command
/// scheduler wraps kernels of concurrently-executing command groups in
/// this so independent commands share the machine instead of each
/// trying to fan out over the same pool (and deadlocking on the
/// blocking submit mutex). Nests; restores the previous state.
class ScopedSerialExecution {
 public:
  ScopedSerialExecution() noexcept;
  ~ScopedSerialExecution();
  ScopedSerialExecution(const ScopedSerialExecution&) = delete;
  ScopedSerialExecution& operator=(const ScopedSerialExecution&) = delete;

 private:
  bool saved_;
};

/// True while a ScopedSerialExecution is alive on the calling thread.
[[nodiscard]] bool serial_execution_forced() noexcept;

/// Per-launch executor counters, surfaced in sycl::launch_record so bench
/// reports can show scheduling overhead alongside kernel time.
struct LaunchStats {
  Schedule schedule = Schedule::Steal;
  std::size_t chunks = 0;         ///< chunks in the launch
  std::size_t steals = 0;         ///< successful steal-half operations
  std::size_t stolen_chunks = 0;  ///< chunks that migrated via stealing
  bool parallel = false;          ///< false when the launch ran inline
};

namespace detail {

/// Cancel/error state of one launch. Lives in the pool for parallel jobs
/// and on the stack for serial (or re-entrant) ones, so a nested launch
/// never clobbers the outer job's state.
struct JobState {
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::exception_ptr first_error;

  /// Record the in-flight exception (first wins) and request cancellation
  /// so the claim loops skip the remaining chunks.
  void capture() noexcept {
    cancel.store(true, std::memory_order_relaxed);
    std::lock_guard lock(mu);
    if (!first_error) first_error = std::current_exception();
  }
};

}  // namespace detail

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (>= 1). The pool owns
  /// `threads - 1` background threads; the submitting thread acts as
  /// worker 0.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (including the submitting thread).
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Execute `fn(chunk)` for every chunk in [0, nchunks), distributing
  /// chunks over the workers per the current Schedule. Blocks until all
  /// complete. The first exception thrown by `fn` cancels the remaining
  /// unclaimed chunks and is rethrown. Zero-allocation: `fn` is invoked
  /// inline from a per-claimed-range trampoline.
  template <typename F>
  void run_chunks(std::size_t nchunks, F&& fn) {
    if (nchunks == 0) return;
    using Fn = std::remove_reference_t<F>;
    dispatch(&invoke_chunks<Fn>,
             const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
             nchunks);
  }

  /// Split [0, n) into grain-respecting ranges and call `fn(begin, end)`
  /// for each (begin < end always holds).
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    if (n == 0) return;
    const std::size_t chunk = chunk_size(n);
    const std::size_t nchunks = (n + chunk - 1) / chunk;
    auto body = [&fn, chunk, n](std::size_t c) {
      const std::size_t b = c * chunk;
      fn(b, std::min(n, b + chunk));
    };
    run_chunks(nchunks, body);
  }

  /// Type-erased entry points (thin wrappers over the templates above,
  /// kept for callers that hold a std::function already).
  void run_chunks(std::size_t nchunks,
                  const std::function<void(std::size_t)>& fn);
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Counters of the most recent launch issued *from the calling thread*
  /// (thread-local, so concurrent submitters never observe each other).
  [[nodiscard]] static LaunchStats last_stats() noexcept;

  /// The process-wide pool. Size from SYCLPORT_THREADS env var, default
  /// std::thread::hardware_concurrency() (min 2 so concurrency bugs in
  /// kernels surface even on single-core CI machines).
  static ThreadPool& global();

 private:
  /// One call per claimed chunk range; the templated instantiation loops
  /// the chunks inline, checking the job's cancel flag between chunks.
  using RangeFn = void (*)(detail::JobState& job, void* ctx, std::size_t b,
                           std::size_t e);

  template <typename Fn>
  static void invoke_chunks(detail::JobState& job, void* ctx, std::size_t b,
                            std::size_t e) {
    auto& fn = *static_cast<Fn*>(ctx);
    for (std::size_t c = b; c < e; ++c) {
      if (job.cancel.load(std::memory_order_relaxed)) return;
      try {
        fn(c);
      } catch (...) {
        job.capture();
      }
    }
  }

  /// Per-worker scheduling state, padded so owner pops and thief CASes on
  /// different workers never false-share.
  struct alignas(64) WorkerSlot {
    /// Unclaimed chunk range, packed begin<<32 | end (empty when
    /// begin >= end). Owner pops the front, thieves CAS half off the back.
    std::atomic<std::uint64_t> range{0};
    /// Owner-private counters; read by the submitter after the join.
    std::uint64_t steals = 0;
    std::uint64_t stolen_chunks = 0;
  };

  void dispatch(RangeFn invoke, void* ctx, std::size_t nchunks);
  void run_serial(RangeFn invoke, void* ctx, std::size_t nchunks,
                  Schedule sched);
  void submit(RangeFn invoke, void* ctx, std::size_t nchunks, Schedule sched);
  [[nodiscard]] std::size_t chunk_size(std::size_t n) const noexcept;

  void worker_loop(unsigned worker_id);
  void work(unsigned worker_id);
  bool pop_own(unsigned worker_id, std::uint32_t& b, std::uint32_t& e);
  bool steal(unsigned worker_id, std::uint32_t& b, std::uint32_t& e);
  bool wait_done_spin() const noexcept;

  const unsigned threads_;
  std::unique_ptr<WorkerSlot[]> slots_;
  std::vector<std::thread> workers_;

  // Job descriptor: written by the submitter, published to the workers by
  // the release increment of generation_.
  RangeFn invoke_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t job_chunks_ = 0;
  Schedule job_schedule_ = Schedule::Steal;
  detail::JobState job_state_;

  alignas(64) std::atomic<std::uint64_t> generation_{0};
  alignas(64) std::atomic<std::size_t> next_chunk_{0};  ///< dynamic mode
  alignas(64) std::atomic<unsigned> pending_workers_{0};
  std::atomic<bool> stop_{false};

  std::mutex mu_;  ///< parks idle workers (cv_start_) and submitter (cv_done_)
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::mutex submit_mu_;  ///< serialises launches from different threads
};

}  // namespace syclport::rt
