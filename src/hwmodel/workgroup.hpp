#pragma once
/// \file workgroup.hpp
/// Work-group shape selection models. The study's central contrast is
/// SYCL's flat formulation (the runtime heuristic picks the shape) vs
/// the nd_range formulation (the programmer tunes one shape per
/// application). This module models both:
///  - flat: per-toolchain heuristics reproducing DPC++'s
///    linearize-along-fastest-dim choice and OpenSYCL's fixed tiles;
///  - nd_range: the tuned shape OPS/OP2 applications use.
/// From the chosen shape the model derives padding utilization (wasted
/// work-items when the shape does not divide the iteration space) and a
/// memory-coalescing factor (partial cache-line transactions when the
/// fastest work-group extent is narrow).

#include <array>

#include "core/types.hpp"
#include "hwmodel/loop_profile.hpp"
#include "hwmodel/platform.hpp"

namespace syclport::hw {

struct WgChoice {
  /// Local shape; index 0 slowest, last used index fastest (matching
  /// LoopProfile::extent convention).
  std::array<std::size_t, 3> local{1, 1, 1};
  /// items / padded-items in [0, 1]: 1 = no padding waste.
  double utilization = 1.0;
  /// Fraction of each memory transaction carrying useful data in
  /// (0, 1]: 1 = fully coalesced.
  double coalescing = 1.0;
};

/// Shape the given variant's runtime/programmer would use for `lp` on
/// `hw`. CPU variants return a degenerate shape with utilization 1.
[[nodiscard]] WgChoice choose_workgroup(const Platform& hw, const Variant& v,
                                        const LoopProfile& lp);

/// Padding utilization of `local` over `extent` (helper, unit-tested).
[[nodiscard]] double padding_utilization(const std::array<std::size_t, 3>& extent,
                                         const std::array<std::size_t, 3>& local,
                                         int dims);

/// Coalescing factor for a work-group whose fastest extent is
/// `local_fast`, with `elem_bytes` elements and `line_bytes` transactions.
[[nodiscard]] double coalescing_factor(std::size_t local_fast,
                                       std::size_t elem_bytes,
                                       double line_bytes);

}  // namespace syclport::hw
