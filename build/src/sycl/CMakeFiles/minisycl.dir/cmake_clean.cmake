file(REMOVE_RECURSE
  "CMakeFiles/minisycl.dir/detail/local_arena.cpp.o"
  "CMakeFiles/minisycl.dir/detail/local_arena.cpp.o.d"
  "CMakeFiles/minisycl.dir/launch_log.cpp.o"
  "CMakeFiles/minisycl.dir/launch_log.cpp.o.d"
  "libminisycl.a"
  "libminisycl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minisycl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
