#pragma once
/// \file arg.hpp
/// OP2 par_loop arguments and kernel-side views:
///  - arg_direct(dat, acc): the element's own values, as (const) T*;
///  - arg_indirect(dat, map, idx, acc): values of the idx-th mapped
///    element; INC access hands the kernel an Inc<T> proxy whose
///    addition is atomic or plain depending on the active strategy;
///  - arg_gbl(target, op): global reduction, as Reducer<T>.

#include "core/reducer.hpp"
#include "op2/dat.hpp"
#include "op2/set.hpp"

namespace syclport::op2 {

enum class Acc : std::uint8_t { R, W, RW, INC };

using syclport::Reducer;
using syclport::RedOp;

template <typename T>
struct DirectArg {
  Dat<T>* dat;
  Acc acc;
};

template <typename T>
[[nodiscard]] DirectArg<T> arg_direct(Dat<T>& d, Acc a) {
  return {&d, a};
}

template <typename T>
struct IndirectArg {
  Dat<T>* dat;
  Map* map;
  int idx;  ///< which map column selects the target element
  Acc acc;
};

template <typename T>
[[nodiscard]] IndirectArg<T> arg_indirect(Dat<T>& d, Map& m, int idx, Acc a) {
  return {&d, &m, idx, a};
}

template <typename T>
struct GblArg {
  T* target;
  RedOp op;
};

template <typename T>
[[nodiscard]] GblArg<T> arg_gbl(T& target, RedOp op) {
  return {&target, op};
}

/// Kernel-side view of an INC argument: accumulates into the mapped
/// element's components, atomically when the strategy requires it.
template <typename T>
class Inc {
 public:
  Inc(T* p, bool atomic) : p_(p), atomic_(atomic) {}

  void add(int c, T v) const {
    if (atomic_) {
      std::atomic_ref<T>(p_[c]).fetch_add(v, std::memory_order_relaxed);
    } else {
      p_[c] += v;
    }
  }

 private:
  T* p_;
  bool atomic_;
};

}  // namespace syclport::op2
