# Empty compiler generated dependencies file for ablation_boundary.
# This may be replaced when dependencies are built.
