#pragma once
/// \file queue.hpp
/// miniSYCL queue and event. Submission is synchronous (in-order queue
/// semantics); events carry host wall time for the functional run.

#include <cstring>
#include <utility>

#include "sycl/device.hpp"
#include "sycl/handler.hpp"

namespace sycl {

class event {
 public:
  event() = default;
  explicit event(double host_seconds) : host_seconds_(host_seconds) {}

  /// Host wall-clock seconds spent executing the command group.
  [[nodiscard]] double host_seconds() const { return host_seconds_; }

  void wait() const {}

 private:
  double host_seconds_ = 0.0;
};

/// In-order queue over a single (modeled) device.
class queue {
 public:
  queue() : dev_(device::host()) {}
  explicit queue(device dev) : dev_(std::move(dev)) {}

  [[nodiscard]] const device& get_device() const { return dev_; }

  /// Submit a command group; executes synchronously.
  template <typename CGF>
  event submit(CGF&& cgf) {
    syclport::WallTimer t;
    handler h(dev_);
    std::forward<CGF>(cgf)(h);
    return event(t.seconds());
  }

  /// Shortcut forms, as in SYCL 2020.
  template <typename... Args>
  event parallel_for(Args&&... args) {
    return submit([&](handler& h) {
      h.parallel_for(std::forward<Args>(args)...);
    });
  }

  template <typename K>
  event single_task(const K& k) {
    return submit([&](handler& h) { h.single_task(k); });
  }

  /// USM-style utility operations.
  event memcpy(void* dst, const void* src, std::size_t bytes) {
    syclport::WallTimer t;
    std::memcpy(dst, src, bytes);
    return event(t.seconds());
  }

  template <typename T>
  event fill(T* ptr, const T& value, std::size_t count) {
    syclport::WallTimer t;
    for (std::size_t i = 0; i < count; ++i) ptr[i] = value;
    return event(t.seconds());
  }

  queue& wait() { return *this; }
  void wait_and_throw() {}

 private:
  device dev_;
};

}  // namespace sycl
