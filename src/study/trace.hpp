#pragma once
/// \file trace.hpp
/// JSON trace emission: dump an application's recorded loop schedule,
/// and optionally the per-kernel modeled time breakdown on a chosen
/// (platform, variant), for offline analysis/plotting. Hand-rolled
/// writer (no JSON dependency); numbers are emitted with full
/// precision.

#include <span>
#include <string>

#include "core/types.hpp"
#include "hwmodel/loop_profile.hpp"

namespace syclport::study {

/// Write the schedule as a JSON array of loop objects. Returns false on
/// I/O failure.
bool write_trace_json(const std::string& path,
                      std::span<const hw::LoopProfile> profiles);

/// Same, with the modeled per-kernel time breakdown for (platform, v)
/// attached to each loop object.
bool write_modeled_trace_json(const std::string& path,
                              std::span<const hw::LoopProfile> profiles,
                              PlatformId platform, const Variant& v,
                              AppId app);

}  // namespace syclport::study
