#pragma once
/// \file fiber.hpp
/// User-level cooperative fibers built on POSIX ucontext. The miniSYCL
/// executor uses one fiber per work-item when a kernel contains
/// group barriers: at a barrier every fiber yields back to the group
/// scheduler, which resumes the next work-item, giving correct SYCL
/// barrier semantics on a CPU without compiler support (the same
/// technique OpenCL CPU runtimes use).

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace syclport::rt {

/// A single cooperatively-scheduled fiber.
class Fiber {
 public:
  /// `fn` runs on the fiber's own stack when resume() is first called.
  /// `stack_bytes` must be generous enough for the kernel's frames.
  explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = 128 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it yields or finishes. Returns true while the
  /// fiber still has work left (i.e. it yielded), false once finished.
  /// Rethrows any exception the fiber body threw.
  bool resume();

  /// Called from inside the fiber body: suspend and return control to
  /// the resume() caller.
  static void yield();

  [[nodiscard]] bool done() const noexcept { return done_; }

 private:
  static void trampoline();

  std::function<void()> fn_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  ucontext_t caller_{};
  bool started_ = false;
  bool done_ = false;
  std::exception_ptr error_;
};

/// Runs `n` logical work-items that may synchronise with group_barrier().
///
/// Work-item 0 executes first as a *probe fiber*. If it completes
/// without hitting a barrier then - by SYCL's barrier-uniformity rule -
/// no other work-item will either, and items 1..n-1 run as a plain
/// loop (fast path, one fiber per group total). If the probe suspends
/// at a barrier, the executor creates fibers for the remaining items
/// and round-robins through the group; nothing is ever re-executed.
/// A barrier reached by a non-probe item on the fast path violates
/// uniformity and raises std::logic_error.
///
/// Returns true when the group actually used barriers (fiber mode).
bool run_barrier_group(std::size_t n, const std::function<void(std::size_t)>& task);

/// SYCL-style group barrier; callable only from inside run_barrier_group
/// tasks (or any live Fiber, where it yields).
void group_barrier();

/// True while the calling thread is inside a run_barrier_group task.
[[nodiscard]] bool inside_barrier_group() noexcept;

}  // namespace syclport::rt
