file(REMOVE_RECURSE
  "CMakeFiles/table1_babelstream.dir/table1_babelstream.cpp.o"
  "CMakeFiles/table1_babelstream.dir/table1_babelstream.cpp.o.d"
  "table1_babelstream"
  "table1_babelstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_babelstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
