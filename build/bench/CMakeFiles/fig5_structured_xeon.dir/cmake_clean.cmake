file(REMOVE_RECURSE
  "CMakeFiles/fig5_structured_xeon.dir/fig5_structured_xeon.cpp.o"
  "CMakeFiles/fig5_structured_xeon.dir/fig5_structured_xeon.cpp.o.d"
  "fig5_structured_xeon"
  "fig5_structured_xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_structured_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
