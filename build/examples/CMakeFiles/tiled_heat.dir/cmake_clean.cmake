file(REMOVE_RECURSE
  "CMakeFiles/tiled_heat.dir/tiled_heat.cpp.o"
  "CMakeFiles/tiled_heat.dir/tiled_heat.cpp.o.d"
  "tiled_heat"
  "tiled_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
