// Ablation: flat vs nd_range work-group selection (paper §4.1's central
// contrast). Reports per-platform average slowdowns of each SYCL
// formulation against the native baseline, including the §4.1 quotes:
// A100: DPC++ nd +1.2% vs CUDA, OpenSYCL nd +5.3%;
// MI250X: DPC++ nd +15.9% vs HIP, OpenSYCL nd +4.5%;
// Max1100: DPC++ nd 30.2% faster than OpenMP offload, OpenSYCL 27.6%.

#include <iostream>
#include <vector>

#include "common/figures.hpp"
#include "core/report.hpp"
#include "core/statistics.hpp"

using namespace syclport;

namespace {

/// Geometric-mean runtime ratio of variant family vs the native
/// baseline over the structured apps (only cells where both ran).
double mean_ratio(study::StudyRunner& runner, PlatformId p, Model m,
                  Toolchain tc) {
  std::vector<double> ratios;
  const Variant native = study::native_variant(p);
  for (AppId a : kStructuredApps) {
    const auto rn = runner.run(a, p, native);
    if (!rn.ok()) continue;
    for (const Variant& v : study::structured_variants(p)) {
      if (v.model != m || v.toolchain != tc) continue;
      const auto r = runner.run(a, p, v);
      if (r.ok()) ratios.push_back(r.runtime_s / rn.runtime_s);
    }
  }
  return stats::geometric_mean(ratios);
}

}  // namespace

int main() {
  study::StudyRunner runner;
  std::cout << "=== Ablation: flat vs nd_range work-group selection ===\n\n";

  report::Table t({"platform", "variant family", "runtime vs native",
                   "paper quote"});
  struct Row {
    PlatformId p;
    Model m;
    Toolchain tc;
    const char* paper;
  };
  const Row rows[] = {
      {PlatformId::A100, Model::SYCLNDRange, Toolchain::DPCPP, "+1.2%"},
      {PlatformId::A100, Model::SYCLNDRange, Toolchain::OpenSYCL, "+5.3%"},
      {PlatformId::A100, Model::SYCLFlat, Toolchain::DPCPP, "(outliers)"},
      {PlatformId::A100, Model::SYCLFlat, Toolchain::OpenSYCL, "(outliers)"},
      {PlatformId::MI250X, Model::SYCLNDRange, Toolchain::DPCPP, "+15.9%"},
      {PlatformId::MI250X, Model::SYCLNDRange, Toolchain::OpenSYCL, "+4.5%"},
      {PlatformId::Max1100, Model::SYCLNDRange, Toolchain::DPCPP, "-30.2%"},
      {PlatformId::Max1100, Model::SYCLNDRange, Toolchain::OpenSYCL,
       "-27.6%"},
      {PlatformId::Max1100, Model::SYCLFlat, Toolchain::DPCPP, "> native"},
  };
  for (const Row& r : rows) {
    const double ratio = mean_ratio(runner, r.p, r.m, r.tc);
    std::string family = std::string(to_string(r.tc)) +
                         (r.m == Model::SYCLFlat ? " flat" : " nd_range");
    t.add_row({std::string(to_string(r.p)), family,
               bench::pct_delta(ratio, 1.0), r.paper});
  }
  t.render(std::cout);
  std::cout << "\n(negative = faster than the platform's native model; the "
               "Max 1100's native is OpenMP offload.)\n";
  return 0;
}
