#pragma once
/// \file opensbli.hpp
/// OpenSBLI proxy (paper §3, item 2): a 3D compressible flow solver
/// with 4th-order central differences in two formulations:
///  - Store All (SA): three derivative kernels write 15 gradient arrays
///    which a pointwise residual kernel then consumes - bandwidth-bound;
///  - Store None (SN): one fused kernel recomputes all derivatives on
///    the fly - fewer bytes, far more flops per point.
/// Both discretize the same equations, so their results must agree to
/// rounding - the cross-validation property test this repo uses.
/// (Viscous terms are replaced by a small artificial dissipation; the
/// store/recompute trade-off the paper measures is unaffected. See
/// DESIGN.md §2.)

#include "apps/common.hpp"
#include "ops/ops.hpp"

namespace syclport::apps {

/// Paper configuration: 320^3, 20 time iterations, double precision.
[[nodiscard]] inline ProblemSize opensbli_paper() {
  return {{320, 320, 320}, 20};
}

/// Reduced configuration for functional validation runs.
[[nodiscard]] inline ProblemSize opensbli_small() {
  return {{20, 20, 20}, 4};
}

/// Run the Store-All / Store-None formulation; checksum is the final
/// density interior sum (conserved up to boundary effects). The study
/// variants use forward-Euler time stepping (one residual per
/// iteration, matching the calibrated schedules).
[[nodiscard]] RunSummary run_opensbli_sa(const ops::Options& opt,
                                         ProblemSize ps);
[[nodiscard]] RunSummary run_opensbli_sn(const ops::Options& opt,
                                         ProblemSize ps);

/// The production time scheme: 3-stage SSP Runge-Kutta (three residual
/// evaluations per iteration plus the stage-combination kernels).
[[nodiscard]] RunSummary run_opensbli_sa_rk3(const ops::Options& opt,
                                             ProblemSize ps);
[[nodiscard]] RunSummary run_opensbli_sn_rk3(const ops::Options& opt,
                                             ProblemSize ps);

}  // namespace syclport::apps
