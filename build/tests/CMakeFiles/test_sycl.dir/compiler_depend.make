# Empty compiler generated dependencies file for test_sycl.
# This may be replaced when dependencies are built.
