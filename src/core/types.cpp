#include "core/types.hpp"

namespace syclport {

std::string_view to_string(AppId a) {
  switch (a) {
    case AppId::CloverLeaf2D: return "CloverLeaf2D";
    case AppId::CloverLeaf3D: return "CloverLeaf3D";
    case AppId::OpenSBLI_SA: return "OpenSBLI-SA";
    case AppId::OpenSBLI_SN: return "OpenSBLI-SN";
    case AppId::RTM: return "RTM";
    case AppId::Acoustic: return "Acoustic";
    case AppId::MGCFD: return "MG-CFD";
  }
  return "?";
}

std::string_view to_string(PlatformId p) {
  switch (p) {
    case PlatformId::A100: return "NVIDIA A100";
    case PlatformId::MI250X: return "AMD MI250X";
    case PlatformId::Max1100: return "Intel Max 1100";
    case PlatformId::Xeon8360Y: return "Xeon 8360Y";
    case PlatformId::GenoaX: return "EPYC Genoa-X";
    case PlatformId::Altra: return "Ampere Altra";
  }
  return "?";
}

std::string_view to_string(Model m) {
  switch (m) {
    case Model::MPI: return "MPI";
    case Model::MPI_OpenMP: return "MPI+OpenMP";
    case Model::OpenMP: return "OpenMP";
    case Model::CUDA: return "CUDA";
    case Model::HIP: return "HIP";
    case Model::OpenMPOffload: return "OpenMP offload";
    case Model::SYCLFlat: return "SYCL flat";
    case Model::SYCLNDRange: return "SYCL nd_range";
  }
  return "?";
}

std::string_view to_string(Toolchain t) {
  switch (t) {
    case Toolchain::Native: return "native";
    case Toolchain::DPCPP: return "DPC++";
    case Toolchain::OpenSYCL: return "OpenSYCL";
    case Toolchain::Cray: return "Cray";
  }
  return "?";
}

std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::None: return "none";
    case Strategy::Atomics: return "atomics";
    case Strategy::GlobalColor: return "global";
    case Strategy::Hierarchical: return "hierarchical";
    case Strategy::Staged: return "staged";
  }
  return "?";
}

std::string to_string(const Variant& v) {
  std::string label;
  if (v.is_sycl()) {
    label = std::string(to_string(v.toolchain));
    label += v.model == Model::SYCLFlat ? " flat" : " nd_range";
  } else if (v.toolchain == Toolchain::Cray &&
             v.model == Model::OpenMPOffload) {
    label = "Cray OpenMP offload";
  } else {
    label = std::string(to_string(v.model));
  }
  if (v.strategy != Strategy::None) {
    label += " [";
    label += to_string(v.strategy);
    label += "]";
  }
  return label;
}

std::optional<AppId> parse_app(std::string_view name) {
  for (AppId a : kAllApps)
    if (to_string(a) == name) return a;
  return std::nullopt;
}

std::optional<PlatformId> parse_platform(std::string_view name) {
  for (PlatformId p : kAllPlatforms)
    if (to_string(p) == name) return p;
  return std::nullopt;
}

}  // namespace syclport
