#pragma once
/// \file pp_metric.hpp
/// Pennycook & Sewall's performance-portability metric
/// ("Revisiting a Metric for Performance Portability", P3HPC 2021),
/// the aggregate the paper reports in §4.4.
///
/// For an application a, problem p and platform set H, with e_i(a,p)
/// the performance efficiency achieved on platform i:
///
///     PP(a, p, H) = |H| / sum_{i in H} 1 / e_i(a, p)
///
/// if a is supported (e_i > 0) on every platform in H, and 0 otherwise.
/// The paper also quotes PP "ignoring failing/unavailable variants";
/// pp_supported_only() implements that relaxation.

#include <span>

namespace syclport {

/// Strict PP: harmonic mean of efficiencies over all platforms, or 0 if
/// any efficiency is <= 0 (i.e. unsupported/failed anywhere).
[[nodiscard]] double pp_metric(std::span<const double> efficiencies) noexcept;

/// Relaxed PP over only the platforms where the variant ran correctly
/// (efficiency > 0). Returns 0 when no platform succeeded.
[[nodiscard]] double pp_supported_only(
    std::span<const double> efficiencies) noexcept;

}  // namespace syclport
