#include "runtime/autotune/fingerprint.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "runtime/thread_pool.hpp"

namespace syclport::rt::autotune {

namespace {

/// Data-cache size via sysconf where available, 0 (= "unknown", still a
/// stable value) elsewhere.
[[nodiscard]] long cache_bytes(int level) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const int name = level == 1   ? _SC_LEVEL1_DCACHE_SIZE
                   : level == 2 ? _SC_LEVEL2_CACHE_SIZE
                                : _SC_LEVEL3_CACHE_SIZE;
  const long v = ::sysconf(name);
  return v > 0 ? v : 0;
#else
  (void)level;
  return 0;
#endif
}

/// One BabelStream Triad sweep over the pool; best of `reps`.
[[nodiscard]] double measure_triad_gbs() {
  // 3 x 8 MiB: comfortably past every studied LLC without making the
  // one-time measurement slow.
  const std::size_t n = std::size_t{1} << 20;
  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  auto& pool = ThreadPool::global();
  auto sweep = [&] {
    pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + 0.4 * c[i];
    });
  };
  sweep();  // first touch + pool warm-up
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    sweep();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, s);
  }
  return 3.0 * static_cast<double>(n) * sizeof(double) / best / 1e9;
}

struct Fingerprint {
  std::string text;
  double triad_gbs = 0.0;
};

[[nodiscard]] const Fingerprint& fingerprint() {
  static const Fingerprint fp = [] {
    Fingerprint f;
    f.triad_gbs = measure_triad_gbs();
    const long triad_log2 =
        std::lround(std::log2(std::max(f.triad_gbs, 1e-3)));
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "cores=%u;l1d=%ld;l2=%ld;llc=%ld;triad_log2=%ld",
                  std::max(1u, std::thread::hardware_concurrency()),
                  cache_bytes(1), cache_bytes(2), cache_bytes(3), triad_log2);
    f.text = buf;
    return f;
  }();
  return fp;
}

}  // namespace

const std::string& device_fingerprint() { return fingerprint().text; }

double fingerprint_triad_gbs() { return fingerprint().triad_gbs; }

}  // namespace syclport::rt::autotune
