#include "minimpi/elastic.hpp"

#include <array>
#include <atomic>
#include <cstddef>

#include "runtime/env.hpp"
#include "runtime/fault/fault.hpp"
#include "sycl/launch_log.hpp"

namespace syclport::mpi {

namespace detail {

/// State shared by the driver loop and the rank threads of one epoch.
/// Immutable per epoch except `last_ckpt` (advanced by step_done after
/// a collective save completes) and `agreement` (stored by agree()).
struct EpochShared {
  int epoch = 0;
  int ckpt_every = 0;
  int start_step = 0;        ///< snapshot of last_ckpt + 1 at epoch start
  int failed_rank = -1;      ///< victim of the previous epoch, -1 if none
  std::string ckpt_path;
  std::atomic<int>* last_ckpt = nullptr;  ///< driver-owned, spans epochs
  std::atomic<std::uint64_t> agreement{0};
};

}  // namespace detail

namespace {

namespace fault = rt::fault;

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The deterministic agreement proposal: every survivor that shares the
/// fault seed and the same view of the failure derives the same token.
[[nodiscard]] std::uint64_t agreement_token(std::uint64_t seed, int epoch,
                                            int failed_rank,
                                            int survivors) noexcept {
  std::uint64_t h = mix64(seed ^ 0xE1A57C0DEull);
  h = mix64(h ^ static_cast<std::uint64_t>(epoch));
  h = mix64(h ^ (static_cast<std::uint64_t>(failed_rank) + 2));
  h = mix64(h ^ static_cast<std::uint64_t>(survivors));
  return h;
}

/// Raise the shared checkpoint watermark to `s` (several ranks finish
/// the same collective save; the max wins).
void raise_watermark(std::atomic<int>& mark, int s) noexcept {
  int cur = mark.load(std::memory_order_relaxed);
  while (cur < s &&
         !mark.compare_exchange_weak(cur, s, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* to_string(Recovery policy) noexcept {
  switch (policy) {
    case Recovery::Abort: return "abort";
    case Recovery::Shrink: return "shrink";
    case Recovery::Respawn: return "respawn";
  }
  return "abort";
}

ElasticOptions ElasticOptions::from_env() {
  ElasticOptions opts;
  static constexpr std::array<std::string_view, 3> kPolicies = {
      "abort", "shrink", "respawn"};
  if (const auto p = rt::env::get_choice("SYCLPORT_RECOVERY", kPolicies))
    opts.policy = static_cast<Recovery>(*p);
  if (const auto n = rt::env::get_long("SYCLPORT_CKPT_EVERY", 1, 1'000'000))
    opts.ckpt_every = static_cast<int>(*n);
  return opts;
}

int Epoch::index() const noexcept { return sh_->epoch; }

int Epoch::start_step() const noexcept { return sh_->start_step; }

bool Epoch::resuming() const noexcept { return sh_->start_step > 0; }

const std::string& Epoch::checkpoint_path() const noexcept {
  return sh_->ckpt_path;
}

void Epoch::step_done(int s, const std::function<void()>& save) {
  comm_->heartbeat();
  if (fault::armed()) {
    // One decision per (epoch, step), shared by every rank: the roll
    // stream is the epoch so re-executed steps of a later epoch draw
    // fresh, and the injection cap bounds the total kills of the run.
    const auto roll = fault::roll_shared(fault::Site::RankKill,
                                         static_cast<std::uint64_t>(sh_->epoch),
                                         static_cast<std::uint64_t>(s) + 1);
    if (roll.fire) {
      const int victim = static_cast<int>(
          roll.value % static_cast<std::uint64_t>(comm_->size()));
      if (comm_->rank() == victim)
        throw rank_killed_error(
            "injected fault (rank.kill): rank " + std::to_string(victim) +
                " killed after step " + std::to_string(s) + " of epoch " +
                std::to_string(sh_->epoch),
            victim, s);
      // Survivors do NOT throw here. Ranks reach a given step boundary
      // at different times, and a survivor throwing before the victim
      // would hand mpi::run() an all-cascade failure set with no
      // primary. Only the victim dies; every survivor unwinds through
      // the transport's PeerFailed wake-up at its next blocked
      // communication, so the victim's rank_killed_error is always the
      // single primary error.
    }
  }
  if (sh_->ckpt_every > 0 && (s + 1) % sh_->ckpt_every == 0) {
    save();
    raise_watermark(*sh_->last_ckpt, s);
  }
}

void Epoch::agree() {
  const std::uint64_t mine =
      agreement_token(fault::seed(), sh_->epoch, sh_->failed_rank,
                      comm_->size());
  const auto all = comm_->allgather(mine);
  for (std::size_t r = 0; r < all.size(); ++r)
    if (all[r] != mine)
      throw std::runtime_error(
          "elastic agreement failed: rank " + std::to_string(r) +
          " proposed a different epoch token (inconsistent failure view)");
  sh_->agreement.store(mine, std::memory_order_relaxed);
}

void run_elastic(int nranks, int steps, const ElasticOptions& opts,
                 const std::function<void(Comm&, Epoch&)>& epoch_fn) {
  if (nranks < 1) throw std::invalid_argument("run_elastic: nranks < 1");
  if (opts.ckpt_every < 0)
    throw std::invalid_argument("run_elastic: ckpt_every < 0");
  (void)steps;  // the step count is the epoch_fn's loop bound

  int size = nranks;
  int epoch = 0;
  int failed_rank = -1;
  std::atomic<int> last_ckpt{-1};

  for (;;) {
    detail::EpochShared sh;
    sh.epoch = epoch;
    sh.ckpt_every = opts.ckpt_every;
    sh.start_step = last_ckpt.load(std::memory_order_relaxed) + 1;
    sh.failed_rank = failed_rank;
    sh.ckpt_path = opts.ckpt_path;
    sh.last_ckpt = &last_ckpt;

    try {
      run(size, [&](Comm& comm) {
        Epoch ep(&sh, &comm);
        if (sh.epoch > 0) ep.agree();
        epoch_fn(comm, ep);
      });
      return;
    } catch (const rank_killed_error& killed) {
      if (opts.policy == Recovery::Abort) throw;
      if (epoch + 1 >= opts.max_epochs) throw;
      const int survivors = opts.policy == Recovery::Shrink ? size - 1 : size;
      if (survivors < 1) throw;

      const double detect_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - killed.at)
              .count();
      const int mark = last_ckpt.load(std::memory_order_relaxed);
      sycl::recovery_record rec;
      rec.epoch = static_cast<std::uint64_t>(epoch);
      rec.policy = to_string(opts.policy);
      rec.ranks_before = size;
      rec.ranks_after = survivors;
      rec.failed_rank = killed.rank;
      rec.detect_ms = detect_ms;
      rec.rollback_steps = killed.step - mark;  // completed, now discarded
      rec.agreement =
          agreement_token(fault::seed(), epoch + 1, killed.rank, survivors);
      sycl::launch_log::instance().append_recovery(rec);

      failed_rank = killed.rank;
      size = survivors;
      ++epoch;
    }
  }
}

}  // namespace syclport::mpi
