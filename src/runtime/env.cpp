#include "runtime/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

namespace syclport::rt::env {

namespace {

std::mutex g_warn_mu;
std::vector<std::string> g_warned;

[[nodiscard]] bool should_warn(const char* name) {
  std::lock_guard lock(g_warn_mu);
  for (const auto& w : g_warned)
    if (w == name) return false;
  g_warned.emplace_back(name);
  return true;
}

}  // namespace

std::optional<std::string_view> get(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string_view(v);
}

void warn_invalid(const char* name, std::string_view value,
                  std::string_view expected) {
  if (!should_warn(name)) return;
  std::fprintf(stderr,
               "syclport: warning: ignoring invalid %s='%.*s' (expected %.*s)\n",
               name, static_cast<int>(value.size()), value.data(),
               static_cast<int>(expected.size()), expected.data());
}

std::optional<long> get_long(const char* name, long min, long max) {
  const auto raw = get(name);
  if (!raw) return std::nullopt;
  const std::string value(*raw);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value.c_str(), &end, 10);
  const bool whole = end != nullptr && *end == '\0' && !value.empty();
  if (!whole || errno == ERANGE || v < min || v > max) {
    char expected[64];
    std::snprintf(expected, sizeof expected, "integer in [%ld, %ld]", min, max);
    warn_invalid(name, value, expected);
    return std::nullopt;
  }
  return v;
}

std::optional<std::size_t> get_choice(
    const char* name, std::span<const std::string_view> allowed) {
  const auto raw = get(name);
  if (!raw) return std::nullopt;
  for (std::size_t i = 0; i < allowed.size(); ++i)
    if (*raw == allowed[i]) return i;
  std::string expected = "one of";
  for (const auto& a : allowed) {
    expected += ' ';
    expected += a;
  }
  warn_invalid(name, *raw, expected);
  return std::nullopt;
}

void reset_warnings_for_testing() {
  std::lock_guard lock(g_warn_mu);
  g_warned.clear();
}

}  // namespace syclport::rt::env
