#include "core/support.hpp"

namespace syclport {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::CompileFail: return "compile-fail";
    case Status::RuntimeCrash: return "crash";
    case Status::Incorrect: return "incorrect";
    case Status::Unsupported: return "unsupported";
  }
  return "?";
}

namespace {

constexpr Variant kDpcppFlat{Model::SYCLFlat, Toolchain::DPCPP};
constexpr Variant kDpcppNd{Model::SYCLNDRange, Toolchain::DPCPP};
constexpr Variant kOsyclFlat{Model::SYCLFlat, Toolchain::OpenSYCL};
constexpr Variant kOsyclNd{Model::SYCLNDRange, Toolchain::OpenSYCL};

SupportMatrix build_paper_matrix() {
  SupportMatrix m;
  // --- Toolchain availability -------------------------------------------
  // "the OneAPI toolkit only supports x86" (paper §4.2, Altra paragraph).
  for (Variant v : {kDpcppFlat, kDpcppNd}) {
    m.add({PlatformId::Altra, AppId::CloverLeaf2D, /*all_apps=*/true, v,
           /*any_strategy=*/true, Status::Unsupported,
           "Altra: OneAPI toolkit only supports x86 (S4.2)"});
  }
  // "this architecture has a single NUMA node, so we didn't use
  // MPI+OpenMP" (paper §4.2).
  m.add({PlatformId::Altra, AppId::CloverLeaf2D, true,
         Variant{Model::MPI_OpenMP, Toolchain::Native}, true,
         Status::Unsupported, "Altra: single NUMA node, no MPI+OpenMP run"});

  // --- Structured-mesh failures ------------------------------------------
  // "For CloverLeaf 2D, both DPC++ (flat variant) and OpenSYCL (either
  // variant) produced code that gave incorrect results." (Genoa-X, §4.2)
  m.add({PlatformId::GenoaX, AppId::CloverLeaf2D, false, kDpcppFlat, true,
         Status::Incorrect, "Genoa-X CloverLeaf2D DPC++ flat incorrect"});
  m.add({PlatformId::GenoaX, AppId::CloverLeaf2D, false, kOsyclFlat, true,
         Status::Incorrect, "Genoa-X CloverLeaf2D OpenSYCL incorrect"});
  m.add({PlatformId::GenoaX, AppId::CloverLeaf2D, false, kOsyclNd, true,
         Status::Incorrect, "Genoa-X CloverLeaf2D OpenSYCL incorrect"});

  // "OpenMP offload, compiled with the Cray compilers ... though failing
  // on CloverLeaf 3D" (MI250X, §4.1).
  m.add({PlatformId::MI250X, AppId::CloverLeaf3D, false,
         Variant{Model::OpenMPOffload, Toolchain::Cray}, true,
         Status::RuntimeCrash, "MI250X CloverLeaf3D Cray OMP offload fails"});

  // --- MG-CFD on CPUs ------------------------------------------------------
  // "there are numerous SYCL variant and compiler combinations which
  // failed to compile (with internal compiler errors, mostly OpenSYCL),
  // crashed during execution, or produced incorrect results" (§4.3).
  // The paper does not enumerate the cells; this reproduction fixes a
  // concrete assignment consistent with every quoted constraint, in
  // particular that OpenSYCL+atomics worked on ALL platforms (PP = 0.42,
  // §4.4) and that hierarchical OpenSYCL numbers are quoted on Genoa-X
  // and Altra.
  const Variant osycl_global{Model::SYCLNDRange, Toolchain::OpenSYCL,
                             Strategy::GlobalColor};
  const Variant dpcpp_global{Model::SYCLNDRange, Toolchain::DPCPP,
                             Strategy::GlobalColor};
  const Variant osycl_hier{Model::SYCLNDRange, Toolchain::OpenSYCL,
                           Strategy::Hierarchical};
  m.add({PlatformId::Xeon8360Y, AppId::MGCFD, false, osycl_global, false,
         Status::CompileFail, "MG-CFD CPU: OpenSYCL ICEs (S4.3)"});
  m.add({PlatformId::GenoaX, AppId::MGCFD, false, osycl_global, false,
         Status::CompileFail, "MG-CFD CPU: OpenSYCL ICEs (S4.3)"});
  m.add({PlatformId::GenoaX, AppId::MGCFD, false, dpcpp_global, false,
         Status::Incorrect, "MG-CFD CPU: incorrect results (S4.3)"});
  m.add({PlatformId::Altra, AppId::MGCFD, false, osycl_global, false,
         Status::RuntimeCrash, "MG-CFD CPU: crash during execution (S4.3)"});
  (void)osycl_hier;  // documented-working; listed here for symmetry
  return m;
}

bool variant_matches(const SupportEntry& e, const Variant& v) {
  if (e.variant.model != v.model) return false;
  if (e.variant.toolchain != v.toolchain) return false;
  if (!e.any_strategy && e.variant.strategy != v.strategy) return false;
  return true;
}

}  // namespace

const SupportMatrix& SupportMatrix::paper() {
  static const SupportMatrix m = build_paper_matrix();
  return m;
}

Status SupportMatrix::status(PlatformId p, AppId a, const Variant& v) const {
  for (const SupportEntry& e : entries_) {
    if (e.platform != p) continue;
    if (!e.all_apps && e.app != a) continue;
    if (!variant_matches(e, v)) continue;
    return e.status;
  }
  return Status::Ok;
}

}  // namespace syclport
