# Empty compiler generated dependencies file for test_ops_dist.
# This may be replaced when dependencies are built.
