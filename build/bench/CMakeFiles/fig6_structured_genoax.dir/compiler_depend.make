# Empty compiler generated dependencies file for fig6_structured_genoax.
# This may be replaced when dependencies are built.
