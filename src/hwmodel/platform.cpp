#include "hwmodel/platform.hpp"

#include <stdexcept>

namespace syclport::hw {

namespace {

// Calibration notes ----------------------------------------------------------
// stream_bw_gbs : paper Table 1 (measured BabelStream Triad).
// peak_bw_gbs   : vendor theoretical peak.
// fpXX_tflops   : paper §2 where given, vendor sheets otherwise.
// llc           : paper §4.1 quotes L2 sizes 40MB (A100), 16MB (MI250X GCD),
//                 208MB (Max 1100); CPU L3 from vendor specs, Genoa-X
//                 2 x 1.1GB quoted in §4.3.
// launch_latency: µs per kernel launch for the *native* model; the paper
//                 attributes MI250X's larger boundary-loop share to higher
//                 launch latency, and DPC++-on-CPU overhead to OpenCL
//                 (see exec_profile.cpp for per-toolchain adjustments).
// atomic_gups   : FP64 atomic update throughput; MI250X distinguishes
//                 "safe" vs "unsafe" atomics (§4.3); Max 1100 atomics are
//                 the MG-CFD limiter (§4.3), hence the low figure.

constexpr Platform kA100{
    .id = PlatformId::A100,
    .name = "NVIDIA A100 40GB PCIe",
    .gpu = true,
    .stream_bw_gbs = 1310.0,
    .peak_bw_gbs = 1555.0,
    .fp32_tflops = 19.49,
    .fp64_tflops = 9.75,
    .l1 = {192.0 * 1024 * 108, 7800.0},
    .llc = {40.0 * 1024 * 1024, 4500.0},
    .app_bw_frac = 0.93,
    .launch_latency_us = 7.0,
    .atomic_gups = 150.0,
    .atomic_gups_unsafe = 150.0,
    .sub_group = 32,
    .line_bytes = 32.0,  // sector granularity
    .cores = 108,
    .numa_domains = 1,
    .issue_gitems = 150.0,
    .numa_penalty = 1.0,
};

constexpr Platform kMI250X{
    .id = PlatformId::MI250X,
    .name = "AMD MI250X (1 GCD)",
    .gpu = true,
    .stream_bw_gbs = 1290.0,
    .peak_bw_gbs = 1638.0,
    .fp32_tflops = 23.95,
    .fp64_tflops = 23.95,
    .l1 = {16.0 * 1024 * 110, 3800.0},
    .llc = {16.0 * 1024 * 1024, 3500.0},
    .app_bw_frac = 0.82,
    .launch_latency_us = 15.0,
    .atomic_gups = 55.0,
    .atomic_gups_unsafe = 120.0,
    .sub_group = 64,
    .line_bytes = 64.0,
    .cores = 110,
    .numa_domains = 1,
    .issue_gitems = 120.0,
    .numa_penalty = 1.0,
};

constexpr Platform kMax1100{
    .id = PlatformId::Max1100,
    .name = "Intel Data Center GPU Max 1100",
    .gpu = true,
    .stream_bw_gbs = 803.0,
    .peak_bw_gbs = 1229.0,
    .fp32_tflops = 22.2,
    .fp64_tflops = 22.2,
    .l1 = {512.0 * 1024 * 56, 6000.0},
    .llc = {208.0 * 1024 * 1024, 3000.0},
    .app_bw_frac = 0.86,
    .launch_latency_us = 10.0,
    .atomic_gups = 40.0,
    .atomic_gups_unsafe = 40.0,
    .sub_group = 32,
    .line_bytes = 64.0,
    .cores = 56,
    .numa_domains = 1,
    .issue_gitems = 90.0,
    .numa_penalty = 1.0,
};

constexpr Platform kXeon{
    .id = PlatformId::Xeon8360Y,
    .name = "Intel Xeon Platinum 8360Y (2S, Ice Lake)",
    .gpu = false,
    .stream_bw_gbs = 296.0,
    .peak_bw_gbs = 409.6,
    .fp32_tflops = 12.0,
    .fp64_tflops = 6.0,
    .l1 = {48.0 * 1024 * 72, 1400.0},
    .llc = {108.0 * 1024 * 1024, 1200.0},
    .app_bw_frac = 0.82,
    .launch_latency_us = 1.5,
    .atomic_gups = 60.0,
    .atomic_gups_unsafe = 60.0,
    .sub_group = 8,  // AVX-512 FP64 lanes
    .line_bytes = 64.0,
    .cores = 72,
    .numa_domains = 2,
    .issue_gitems = 45.0,
    .numa_penalty = 0.92,
};

constexpr Platform kGenoaX{
    .id = PlatformId::GenoaX,
    .name = "AMD EPYC 9V33X (2S, Genoa-X)",
    .gpu = false,
    .stream_bw_gbs = 561.0,
    .peak_bw_gbs = 921.6,
    .fp32_tflops = 14.2,
    .fp64_tflops = 7.1,
    .l1 = {32.0 * 1024 * 176, 3400.0},
    .llc = {2.0 * 1.1e9, 2500.0},  // 2 x 1.1 GB 3D V-Cache (paper §4.3)
    .app_bw_frac = 0.85,
    .launch_latency_us = 1.5,
    .atomic_gups = 60.0,
    .atomic_gups_unsafe = 60.0,
    .sub_group = 8,  // AVX-512 FP64 lanes (double-pumped on Zen 4)
    .line_bytes = 64.0,
    .cores = 176,
    .numa_domains = 4,
    .issue_gitems = 110.0,
    .numa_penalty = 0.85,
};

constexpr Platform kAltra{
    .id = PlatformId::Altra,
    .name = "Ampere Altra (1S)",
    .gpu = false,
    .stream_bw_gbs = 167.0,
    .peak_bw_gbs = 204.8,
    .fp32_tflops = 3.0,
    .fp64_tflops = 1.5,
    .l1 = {64.0 * 1024 * 64, 480.0},
    .llc = {32.0 * 1024 * 1024, 800.0},
    .app_bw_frac = 0.74,
    .launch_latency_us = 1.5,
    .atomic_gups = 40.0,
    .atomic_gups_unsafe = 40.0,
    .sub_group = 2,  // NEON FP64 lanes
    .line_bytes = 64.0,
    .cores = 64,
    .numa_domains = 1,
    .issue_gitems = 35.0,
    .numa_penalty = 1.0,
};

}  // namespace

const Platform& platform(PlatformId id) {
  switch (id) {
    case PlatformId::A100: return kA100;
    case PlatformId::MI250X: return kMI250X;
    case PlatformId::Max1100: return kMax1100;
    case PlatformId::Xeon8360Y: return kXeon;
    case PlatformId::GenoaX: return kGenoaX;
    case PlatformId::Altra: return kAltra;
  }
  throw std::invalid_argument("unknown platform id");
}

std::array<const Platform*, 6> all_platforms() {
  return {&kA100, &kMI250X, &kMax1100, &kXeon, &kGenoaX, &kAltra};
}

}  // namespace syclport::hw
