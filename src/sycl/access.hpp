#pragma once
/// \file access.hpp
/// Access modes and accessor tags. Split out of buffer.hpp so the
/// dependency scheduler (detail/scheduler.hpp) can name access_mode
/// without pulling in buffers.

namespace sycl {

/// `discard_write` is a write whose author promises not to read prior
/// contents (SYCL 2020 expresses it as write + property::no_init). The
/// scheduler treats it exactly like write - any non-read mode conflicts
/// - but the memory subsystem uses it to skip materialising buffer
/// storage and to route eligible fills through streaming stores.
enum class access_mode { read, write, read_write, discard_write };

/// Accessor-construction tags, as in SYCL 2020.
struct read_only_tag {};
struct write_only_tag {};
struct read_write_tag {};
inline constexpr read_only_tag read_only{};
inline constexpr write_only_tag write_only{};
inline constexpr read_write_tag read_write{};

/// SYCL 2020 property::no_init analogue, passed alongside write_only:
/// `accessor a(buf, h, sycl::write_only, sycl::no_init)`.
struct no_init_tag {};
inline constexpr no_init_tag no_init{};

}  // namespace sycl
