#include "hwmodel/memory_model.hpp"

#include <algorithm>
#include <cmath>

namespace syclport::hw {

namespace {
/// Fraction of a resident working set that a following sweep actually
/// re-uses before eviction by other traffic (calibration constant; see
/// EXPERIMENTS.md).
constexpr double kReuseCoeff = 0.45;

/// Fraction of the last-level cache a stencil sweep can devote to its
/// layer window (write streams, other arrays and conflict misses take
/// the rest).
constexpr double kUsableCacheFraction = 0.5;
}  // namespace

double stencil_read_multiplier(const Platform& hw, const LoopProfile& lp,
                               double cache_shape_factor) {
  if (lp.dims < 2 || (lp.radius_mid == 0 && lp.radius_slow == 0)) return 1.0;

  // Payload per grid point of the stencil-read arrays (the layer
  // window unit); fall back to n_arrays x elem for older callers.
  const double point_bytes =
      lp.stencil_point_bytes > 0.0
          ? lp.stencil_point_bytes
          : static_cast<double>(std::max(1, lp.n_arrays) * lp.elem_bytes);
  const double fast_ext = static_cast<double>(lp.extent[static_cast<std::size_t>(lp.dims - 1)]);
  const double mid_ext =
      lp.dims >= 2 ? static_cast<double>(lp.extent[static_cast<std::size_t>(lp.dims - 2)]) : 1.0;

  const double cache = hw.llc.bytes * kUsableCacheFraction;
  double extra = 0.0;

  if (lp.dims == 3 && lp.radius_slow > 0) {
    // Full reuse in the slow direction needs 2r+1 planes resident.
    const double plane = fast_ext * mid_ext * point_bytes;
    const double need_planes = (2.0 * lp.radius_slow + 1.0) * plane;
    if (cache < need_planes) {
      const double deficit = 1.0 - cache / need_planes;
      extra += 2.0 * lp.radius_slow * deficit;
    }
  }
  {
    // Reuse in the mid direction needs 2r+1 rows resident.
    const int rm = lp.radius_mid;
    if (rm > 0) {
      const double row = fast_ext * point_bytes;
      const double need_rows = (2.0 * rm + 1.0) * row *
                               (lp.dims == 3 ? mid_ext : 1.0);
      // For 3D the row window exists per plane being swept; scale by the
      // number of concurrently live planes (approximated by 2r_slow+1).
      if (cache < need_rows) {
        const double deficit = 1.0 - cache / need_rows;
        extra += 2.0 * rm * deficit;
      }
    }
  }

  const double cap =
      (2.0 * lp.radius_slow + 1.0) * (2.0 * std::max(lp.radius_mid, 0) + 1.0);
  return std::min(cap, 1.0 + extra * cache_shape_factor);
}

double llc_hit_probability(const Platform& hw, const LoopProfile& lp) {
  if (lp.working_set <= 0.0) return 0.0;
  // LRU on a cyclic sweep thrashes once the working set exceeds the
  // capacity: full reuse below it, falling linearly to zero at 2x
  // (pseudo-LRU keeps a protected fraction alive slightly past C).
  const double c = hw.llc.bytes;
  double resident = 1.0;
  if (lp.working_set > c)
    resident = std::max(0.0, 1.0 - (lp.working_set - c) / c);
  return kReuseCoeff * resident;
}

double memory_time_s(const Platform& hw, double bytes, double hit,
                     double dram_bw_gbs) {
  const double dram = std::max(1.0, dram_bw_gbs) * 1e9;
  const double llc = std::max(dram, hw.llc.bw_gbs * 1e9);
  return bytes * ((1.0 - hit) / dram + hit / llc);
}

double store_traffic_factor(bool write_allocate, bool streaming_stores) {
  // Write-allocate turns every store stream into fetch + writeback;
  // non-temporal stores (or a no-write-allocate policy) write once.
  return (write_allocate && !streaming_stores) ? 2.0 : 1.0;
}

double first_touch_bandwidth_factor(const Platform& hw,
                                    bool parallel_first_touch) {
  if (parallel_first_touch || hw.numa_domains <= 1) return 1.0;
  // Serial touch commits every page on the toucher's domain: remote
  // cores then stream across the interconnect, the same imperfect-
  // placement throttle the descriptor models as numa_penalty.
  return std::clamp(hw.numa_penalty, 0.05, 1.0);
}

}  // namespace syclport::hw
