#pragma once
/// \file array.hpp
/// Fixed-size device-storage array on the mem subsystem: the drop-in
/// replacement for the std::vector<T> backing of OPS/OP2 dats. Unlike
/// vector it never serial-value-initialises - construction goes through
/// mem::alloc, so pages are either first-touched in parallel (Zero) or
/// left to the first writer (Uninit). Restricted to trivially copyable
/// element types, which is all a dat ever stores.

#include <cstddef>
#include <type_traits>
#include <utility>

#include "runtime/mem/mem.hpp"
#include "runtime/mem/stream.hpp"

namespace syclport::rt::mem {

struct uninit_t {
  explicit uninit_t() = default;
};
/// Tag: allocate without touching - for storage the caller fully
/// overwrites before reading (discard_write semantics).
inline constexpr uninit_t uninit{};

template <typename T>
class Array {
  static_assert(std::is_trivially_copyable_v<T>,
                "mem::Array is for trivially copyable device data");

 public:
  Array() = default;

  /// Zero-initialised storage for `n` elements (parallel streaming
  /// zero; the pages are first-touched by the workers that zero them).
  explicit Array(std::size_t n)
      : data_(n ? static_cast<T*>(alloc(n * sizeof(T), Init::Zero)) : nullptr),
        size_(n) {}

  /// Uninitialised storage: pages are committed lazily by whoever
  /// writes first.
  Array(std::size_t n, uninit_t)
      : data_(n ? static_cast<T*>(alloc(n * sizeof(T), Init::None)) : nullptr),
        size_(n) {}

  Array(Array&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}

  Array& operator=(Array&& o) noexcept {
    if (this != &o) {
      dealloc(data_);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;

  ~Array() { dealloc(data_); }

  /// Replace the contents with `n` copies of `v` (parallel streaming
  /// fill; reallocates only when the size changes).
  void assign(std::size_t n, T v) {
    if (n != size_) *this = Array(n, uninit);
    fill(v);
  }

  /// Set every element to `v` via the streaming-store fill path.
  void fill(T v) {
    if (size_ != 0) parallel_fill(data_, size_, v);
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace syclport::rt::mem
