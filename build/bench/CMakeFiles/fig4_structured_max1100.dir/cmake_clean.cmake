file(REMOVE_RECURSE
  "CMakeFiles/fig4_structured_max1100.dir/fig4_structured_max1100.cpp.o"
  "CMakeFiles/fig4_structured_max1100.dir/fig4_structured_max1100.cpp.o.d"
  "fig4_structured_max1100"
  "fig4_structured_max1100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_structured_max1100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
