// Figure 4 reproduction: runtime of the six structured-mesh
// applications on the Max1100 platform across programming-model
// variants (see DESIGN.md experiment index).

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::structured_figure(
      std::cout, runner, PlatformId::Max1100,
      "Figure 4: structured-mesh runtimes, " +
          std::string(to_string(PlatformId::Max1100)),
      "fig4_structured_max1100");
  return 0;
}
