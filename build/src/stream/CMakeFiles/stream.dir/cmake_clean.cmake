file(REMOVE_RECURSE
  "CMakeFiles/stream.dir/babelstream.cpp.o"
  "CMakeFiles/stream.dir/babelstream.cpp.o.d"
  "libstream.a"
  "libstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
