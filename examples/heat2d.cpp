// heat2d: a complete small OPS application - 2D heat diffusion with a
// Jacobi stencil - run through every backend the study compares, then
// projected onto the six modeled platforms.
//
// This is the "write once, evaluate everywhere" workflow of the paper:
// one par_loop description; the DSL lowers it per parallelization and
// records the traffic the hardware model prices per platform.
//
// Build & run:  ./build/examples/heat2d

#include <cmath>
#include <cstdio>

#include "hwmodel/device_model.hpp"
#include "ops/ops.hpp"
#include "study/study.hpp"

namespace ops = syclport::ops;
namespace hw = syclport::hw;
using namespace syclport;

namespace {

/// One Jacobi solve; returns the final residual and fills ctx profiles.
double jacobi(ops::Context& ctx, std::size_t n, int iters) {
  ops::Block grid(ctx, "plate", 2, {n, n, 1});
  ops::Dat<double> t0(grid, "t0", 1, 1), t1(grid, "t1", 1, 1);

  if (ctx.executing()) {
    // Hot left edge (value 1), cold elsewhere; halos hold the BCs.
    for (long j = -1; j <= static_cast<long>(n); ++j) t0.at(j, -1) = 1.0;
    for (long j = -1; j <= static_cast<long>(n); ++j) t1.at(j, -1) = 1.0;
  }

  double residual = 0.0;
  for (int it = 0; it < iters; ++it) {
    ops::par_loop(ctx, {"jacobi", hw::KernelClass::Interior, 5.0}, grid,
                  ops::Range::all(grid),
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) +
                                        in(0, -1));
                  },
                  ops::arg(t1, ops::S_PT, ops::Acc::W),
                  ops::arg(t0, ops::S2D_5PT, ops::Acc::R));
    residual = 0.0;
    ops::par_loop(ctx, {"residual", hw::KernelClass::Reduction, 3.0}, grid,
                  ops::Range::all(grid),
                  [](ops::ACC<double> a, ops::ACC<double> b,
                     ops::Reducer<double> r) {
                    const double d = a(0, 0) - b(0, 0);
                    r += d * d;
                  },
                  ops::arg(t1, ops::S_PT, ops::Acc::R),
                  ops::arg(t0, ops::S_PT, ops::Acc::R),
                  ops::reduce(residual, ops::RedOp::Sum));
    std::swap(t0, t1);
  }
  return std::sqrt(residual);
}

}  // namespace

int main() {
  // 1. Functional runs: every backend computes the same physics.
  std::printf("2D heat diffusion, 96x96, 50 Jacobi iterations\n\n");
  struct Be { ops::Backend b; const char* name; };
  for (const Be be : {Be{ops::Backend::Serial, "Serial"},
                      Be{ops::Backend::Threads, "Threads (OpenMP-like)"},
                      Be{ops::Backend::SyclFlat, "SYCL flat"},
                      Be{ops::Backend::SyclNd, "SYCL nd_range"},
                      Be{ops::Backend::MPI, "MPI (owner-compute)"}}) {
    ops::Options o;
    o.backend = be.b;
    ops::Context ctx(o);
    const double res = jacobi(ctx, 96, 50);
    std::printf("  %-22s residual = %.10f\n", be.name, res);
  }

  // 2. Model-only run at a production size, priced per platform.
  std::printf("\nModeled runtime of the same solve at 8192^2, 500 iters:\n");
  ops::Options o;
  o.mode = ops::Mode::ModelOnly;
  o.backend = ops::Backend::SyclNd;
  ops::Context ctx(o);
  jacobi(ctx, 8192, 500);

  for (PlatformId p : kAllPlatforms) {
    const Variant v = p == PlatformId::Altra
                          ? Variant{Model::SYCLNDRange, Toolchain::OpenSYCL}
                          : Variant{Model::SYCLNDRange, Toolchain::DPCPP};
    const hw::DeviceModel dm(p, v, AppId::CloverLeaf2D);
    double total = 0.0, bytes = 0.0;
    for (const auto& lp : ctx.profiles) {
      const auto kt = dm.kernel_time(lp);
      total += kt.seconds;
      bytes += kt.useful_bytes;
    }
    std::printf("  %-16s %6.2f s   (%.0f GB/s effective, %.0f%% of STREAM)\n",
                std::string(to_string(p)).c_str(), total, bytes / total / 1e9,
                100.0 * bytes / total / 1e9 / dm.hw().stream_bw_gbs);
  }
  return 0;
}
