#include "study/trace.hpp"

#include <fstream>
#include <iomanip>

#include "hwmodel/device_model.hpp"

namespace syclport::study {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* class_name(hw::KernelClass c) {
  switch (c) {
    case hw::KernelClass::Interior: return "interior";
    case hw::KernelClass::Boundary: return "boundary";
    case hw::KernelClass::Reduction: return "reduction";
    case hw::KernelClass::EdgeFlux: return "edge_flux";
    case hw::KernelClass::VertexUpdate: return "vertex_update";
    case hw::KernelClass::MGTransfer: return "mg_transfer";
  }
  return "?";
}

void emit_loop(std::ostream& os, const hw::LoopProfile& lp,
               const hw::DeviceModel* dm) {
  os << "    {\"name\": \"" << escape(lp.name) << "\""
     << ", \"class\": \"" << class_name(lp.cls) << "\""
     << ", \"dims\": " << lp.dims
     << ", \"extent\": [" << lp.extent[0] << ", " << lp.extent[1] << ", "
     << lp.extent[2] << "]"
     << ", \"bytes_read\": " << lp.bytes_read
     << ", \"bytes_written\": " << lp.bytes_written
     << ", \"map_bytes\": " << lp.map_bytes
     << ", \"flops\": " << lp.flops
     << ", \"elem_bytes\": " << lp.elem_bytes
     << ", \"radii\": [" << lp.radius_slow << ", " << lp.radius_mid << ", "
     << lp.radius_fast << "]"
     << ", \"launches\": " << lp.launches
     << ", \"atomic_updates\": " << lp.atomic_updates
     << ", \"gather_line_factor\": " << lp.gather_line_factor
     << ", \"working_set\": " << lp.working_set;
  if (dm != nullptr) {
    const hw::KernelTime kt = dm->kernel_time(lp);
    os << ", \"modeled\": {\"seconds\": " << kt.seconds
       << ", \"launch_s\": " << kt.launch_s << ", \"mem_s\": " << kt.mem_s
       << ", \"comp_s\": " << kt.comp_s << ", \"items_s\": " << kt.items_s
       << ", \"atomic_s\": " << kt.atomic_s
       << ", \"dram_bytes\": " << kt.dram_bytes << "}";
  }
  os << "}";
}

bool write_impl(const std::string& path,
                std::span<const hw::LoopProfile> profiles,
                const hw::DeviceModel* dm) {
  std::ofstream os(path);
  if (!os) return false;
  os << std::setprecision(17);
  os << "{\n  \"loops\": [\n";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    emit_loop(os, profiles[i], dm);
    os << (i + 1 < profiles.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return static_cast<bool>(os);
}

}  // namespace

bool write_trace_json(const std::string& path,
                      std::span<const hw::LoopProfile> profiles) {
  return write_impl(path, profiles, nullptr);
}

bool write_modeled_trace_json(const std::string& path,
                              std::span<const hw::LoopProfile> profiles,
                              PlatformId platform, const Variant& v,
                              AppId app) {
  const hw::DeviceModel dm(platform, v, app);
  return write_impl(path, profiles, &dm);
}

}  // namespace syclport::study
