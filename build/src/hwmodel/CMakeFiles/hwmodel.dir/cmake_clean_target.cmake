file(REMOVE_RECURSE
  "libhwmodel.a"
)
