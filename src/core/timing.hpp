#pragma once
/// \file timing.hpp
/// Wall-clock timing for the functional-execution side of the harness.
/// (Modeled platform runtimes come from hwmodel, not from these timers.)

#include <chrono>

namespace syclport {

/// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace syclport
