#include "runtime/fiber.hpp"

#include <cstdint>
#include <stdexcept>

namespace syclport::rt {

namespace {
thread_local Fiber* t_current_fiber = nullptr;

/// Per-thread flag set while executing the fast (loop) portion of a
/// barrier group; a barrier there violates SYCL barrier uniformity.
thread_local bool t_fast_group_active = false;

// --- per-thread fiber stack pool -------------------------------------------

/// Only default-size stacks are recycled; odd sizes are one-offs. The cap
/// bounds retention for kernels with very wide groups (a 1024-item group
/// briefly needs 1024 stacks, but only kMaxPooledStacks survive it).
constexpr std::size_t kMaxPooledStacks = 64;

struct StackPool {
  std::vector<char*> free;
  FiberStackStats stats;
  ~StackPool() {
    for (char* p : free) delete[] p;
  }
};
thread_local StackPool t_stack_pool;

char* acquire_stack(std::size_t bytes) {
  StackPool& pool = t_stack_pool;
  if (bytes == kFiberStackBytes && !pool.free.empty()) {
    char* p = pool.free.back();
    pool.free.pop_back();
    ++pool.stats.reused;
    return p;
  }
  ++pool.stats.allocated;
  return new char[bytes];
}

void release_stack(char* p, std::size_t bytes) noexcept {
  StackPool& pool = t_stack_pool;
  if (bytes == kFiberStackBytes && pool.free.size() < kMaxPooledStacks) {
    pool.free.push_back(p);
    return;
  }
  delete[] p;
}

}  // namespace

FiberStackStats fiber_stack_stats() noexcept { return t_stack_pool.stats; }

// --- Fiber ------------------------------------------------------------------

void Fiber::init(std::size_t stack_bytes) {
  stack_ = acquire_stack(stack_bytes);
  stack_bytes_ = stack_bytes;
  if (getcontext(&ctx_) != 0) {
    release_stack(stack_, stack_bytes_);
    stack_ = nullptr;
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_;
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &caller_;
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : owned_fn_(std::move(fn)) {
  init(stack_bytes);
}

Fiber::Fiber(RawFn fn, void* ctx, std::size_t stack_bytes)
    : raw_fn_(fn), raw_ctx_(ctx) {
  init(stack_bytes);
}

Fiber::~Fiber() {
  if (stack_ != nullptr) release_stack(stack_, stack_bytes_);
}

void Fiber::trampoline() {
  Fiber* self = t_current_fiber;
  try {
    if (self->raw_fn_ != nullptr)
      self->raw_fn_(self->raw_ctx_);
    else
      self->owned_fn_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->done_ = true;
  // uc_link returns control to the caller context automatically.
}

bool Fiber::resume() {
  if (done_) return false;
  Fiber* prev = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  if (swapcontext(&caller_, &ctx_) != 0)
    throw std::runtime_error("Fiber: swapcontext failed");
  t_current_fiber = prev;
  if (error_) std::rethrow_exception(error_);
  return !done_;
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  if (self == nullptr)
    throw std::logic_error("Fiber::yield called outside a fiber");
  if (swapcontext(&self->ctx_, &self->caller_) != 0)
    throw std::runtime_error("Fiber: swapcontext failed");
}

// --- barrier groups ---------------------------------------------------------

bool inside_barrier_group() noexcept {
  return t_fast_group_active || t_current_fiber != nullptr;
}

void group_barrier() {
  if (t_current_fiber != nullptr) {
    Fiber::yield();
    return;
  }
  if (t_fast_group_active)
    throw std::logic_error(
        "group_barrier: non-uniform barrier (work-item 0 did not reach it)");
  throw std::logic_error("group_barrier called outside a work-group");
}

namespace detail {

namespace {
void probe_entry(void* p) {
  auto* item = static_cast<BarrierProbe::Item0*>(p);
  item->invoke(item->task, 0);
}
}  // namespace

BarrierProbe::BarrierProbe(GroupInvoke invoke, void* task)
    : item0_{invoke, task}, fiber_(&probe_entry, &item0_) {
  suspended_ = fiber_.resume();
}

FastGroupGuard::FastGroupGuard() noexcept { t_fast_group_active = true; }
FastGroupGuard::~FastGroupGuard() { t_fast_group_active = false; }

bool run_barrier_group_fibers(std::size_t n, GroupInvoke invoke, void* task,
                              BarrierProbe& probe) {
  // The probe sits at its first barrier; give every other work-item a
  // fiber and bring each to the same point before starting full rounds,
  // so that no fiber ever runs past barrier k before all reached it.
  struct Item {
    GroupInvoke invoke;
    void* task;
    std::size_t i;
  };
  std::vector<Item> items(n);
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    items[i] = Item{invoke, task, i};
    fibers.push_back(std::make_unique<Fiber>(
        [](void* p) {
          auto* item = static_cast<Item*>(p);
          item->invoke(item->task, item->i);
        },
        &items[i]));
    fibers.back()->resume();
  }

  bool any_live = true;
  while (any_live) {
    any_live = false;
    if (!probe.fiber().done() && probe.fiber().resume()) any_live = true;
    for (auto& f : fibers)
      if (!f->done() && f->resume()) any_live = true;
  }
  return true;
}

}  // namespace detail

}  // namespace syclport::rt
