#pragma once
/// \file dat.hpp
/// OP2 dat: `dim` values of type T per element of a set, stored
/// contiguously per element (AoS). In ModelOnly contexts no storage is
/// allocated.
///
/// Storage is an rt::mem::Array: pooled allocation, parallel
/// streaming-zero initialization, huge pages above the threshold.

#include <string>

#include "op2/set.hpp"
#include "runtime/mem/array.hpp"

namespace syclport::op2 {

template <typename T>
class Dat {
 public:
  Dat(Set& set, int dim, std::string name, bool allocate = true)
      : set_(&set), dim_(dim), name_(std::move(name)) {
    if (allocate)
      data_ = rt::mem::Array<T>(set.size() * static_cast<std::size_t>(dim));
  }

  [[nodiscard]] Set& set() const { return *set_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool allocated() const { return !data_.empty(); }

  [[nodiscard]] T* elem(std::size_t e) {
    return data_.data() + e * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] const T* elem(std::size_t e) const {
    return data_.data() + e * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] T& at(std::size_t e, int c = 0) {
    return data_[e * static_cast<std::size_t>(dim_) + static_cast<std::size_t>(c)];
  }

  [[nodiscard]] double bytes() const {
    return static_cast<double>(set_->size()) * dim_ * sizeof(T);
  }

  /// Raw storage base - the region op2::checkpoint() snapshots and
  /// restore() rewrites. Null when not allocated.
  [[nodiscard]] T* storage() noexcept { return data_.data(); }
  [[nodiscard]] const T* storage() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return data_.size() * sizeof(T);
  }

  /// Parallel streaming-store fill of the whole dat.
  void fill(T v) { data_.fill(v); }

  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (const T& v : data_) s += static_cast<double>(v);
    return s;
  }

 private:
  Set* set_;
  int dim_;
  std::string name_;
  rt::mem::Array<T> data_;
};

}  // namespace syclport::op2
