#pragma once
/// \file comm.hpp
/// mini-MPI: an in-process message-passing substrate. The study's DSLs
/// use the MPI and MPI+X execution models; this module provides real
/// message-passing semantics (typed point-to-point sends/receives with
/// tags, barriers, reductions, gathers) between ranks that run as
/// threads of one process. Wire format and transport are irrelevant to
/// the paper's results - ownership, packing and exchange *structure*
/// are what OPS/OP2 exercise, and those are faithfully reproduced.
///
/// Resilience (docs/resilience.md): while the fault layer is armed
/// (SYCLPORT_FAULT), every point-to-point message carries a
/// per-(src,dst,tag) sequence number and a CRC-32 of its payload, and a
/// pristine copy is parked in a retransmit store until the receiver
/// acknowledges delivery. The receiver enforces in-order delivery per
/// channel, discards duplicates, recovers corrupted payloads from the
/// store, re-requests dropped messages after a timeout with exponential
/// backoff (SYCLPORT_COMM_TIMEOUT_MS x SYCLPORT_COMM_RETRIES), and
/// converts both retry exhaustion and peer death into a typed
/// comm_error instead of a hang. Disarmed, the transport is exactly the
/// original copy-into-mailbox path.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace syclport::mpi {

/// Reduction operations supported by allreduce.
enum class Op { Sum, Min, Max };

/// Typed communication failure: the recovery paths above exhausted
/// their options. Timeout = an expected message never became
/// deliverable; PeerFailed = a rank this operation depends on exited by
/// exception, so the wait can never be satisfied.
class comm_error : public std::runtime_error {
 public:
  enum class Kind { Timeout, PeerFailed };
  comm_error(Kind kind, const std::string& what_arg)
      : std::runtime_error(what_arg), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Aggregate failure of a run(): more than one rank raised a primary
/// error. what() names every failing rank; entries() exposes each
/// rank's exception for programmatic inspection.
class rank_errors : public std::runtime_error {
 public:
  struct Entry {
    int rank;
    std::exception_ptr error;
  };
  rank_errors(const std::string& what_arg, std::vector<Entry> entries)
      : std::runtime_error(what_arg), entries_(std::move(entries)) {}
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<Entry> entries_;
};

namespace detail {
struct Message {
  int src;
  int tag;
  std::vector<std::byte> payload;
  // Armed-transport envelope (zero/false on the disarmed path).
  std::uint64_t seq = 0;   ///< per-(src,dst,tag) sequence number
  std::uint32_t crc = 0;   ///< CRC-32 of the payload at send time
  bool guarded = false;    ///< sent while the fault layer was armed
};

/// A message withheld by comm.delay until `release`.
struct DelayedMessage {
  std::chrono::steady_clock::time_point release;
  int dst;
  Message msg;
};

/// Shared state of one communicator world.
struct World {
  explicit World(int n)
      : size(n),
        mailboxes(static_cast<std::size_t>(n)),
        beats(static_cast<std::size_t>(n)),
        done(static_cast<std::size_t>(n)),
        evicted(static_cast<std::size_t>(n)) {}

  int size;
  std::mutex mu;
  std::condition_variable cv;

  /// mailboxes[dst] holds messages awaiting receipt, FIFO per (src,tag).
  std::vector<std::deque<Message>> mailboxes;

  // Barrier / collective state.
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;
  std::vector<std::vector<std::byte>> gather_slots;

  /// Ranks that exited their rank_fn by exception. Blocked receives and
  /// barriers check this and raise comm_error(PeerFailed) instead of
  /// waiting for progress a dead peer can never make.
  int failed = 0;

  // Heartbeat state (docs/resilience.md "Elastic recovery"). With
  // SYCLPORT_HEARTBEAT_MS set, run() spawns a monitor thread that
  // evicts ranks silent for several intervals, so peer death is
  // discovered proactively rather than only when a recv blocks.
  bool heartbeats_on = false;           ///< set once before ranks start
  std::vector<std::atomic<std::uint64_t>> beats;  ///< last beat, steady ms
  std::vector<std::atomic<std::uint8_t>> done;    ///< rank_fn returned
  std::vector<std::atomic<std::uint8_t>> evicted; ///< monitor-declared dead
  double detect_ms = 0.0;  ///< silence-to-eviction latency (guarded by mu)

  // Armed-transport state, keyed by the packed (src,dst,tag) channel id
  // (see channel_key in comm.cpp). Guarded by mu; untouched while the
  // fault layer is disarmed.
  std::map<std::uint64_t, std::uint64_t> send_seq;  ///< next seq to send
  std::map<std::uint64_t, std::uint64_t> recv_seq;  ///< next seq expected
  /// Pristine retransmit copies, FIFO per channel; entries are dropped
  /// once the receiver delivers their sequence number.
  std::map<std::uint64_t, std::deque<Message>> limbo;
  std::vector<DelayedMessage> delayed;  ///< comm.delay in-flight store
};
}  // namespace detail

/// A rank's handle to the world: the mini-MPI equivalent of an
/// MPI_Comm + rank id.
class Comm {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank)
      : world_(std::move(world)), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size; }

  /// Blocking typed send (buffered: copies payload and returns).
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    send_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void send(int dest, int tag, const T& scalar) {
    send(dest, tag, std::span<const T>(&scalar, 1));
  }

  /// Blocking typed receive; message size must match exactly.
  template <typename T>
  void recv(int src, int tag, std::span<T> out) {
    recv_bytes(src, tag, std::as_writable_bytes(out));
  }
  template <typename T>
  void recv(int src, int tag, T& scalar) {
    recv(src, tag, std::span<T>(&scalar, 1));
  }

  /// Paired exchange with a neighbour (send then receive, deadlock-free
  /// because sends are buffered).
  template <typename T>
  void sendrecv(int peer, int tag, std::span<const T> out, std::span<T> in) {
    send(peer, tag, out);
    recv(peer, tag, in);
  }

  /// Non-blocking operations. Sends are buffered, so isend completes
  /// immediately; irecv defers the matching receive until wait() - the
  /// usual MPI contract (the receive buffer must stay alive and
  /// untouched until the request is waited on) is therefore preserved.
  class Request {
   public:
    Request() = default;
    void wait() {
      if (complete_) complete_();
      complete_ = nullptr;
    }
    [[nodiscard]] bool pending() const { return static_cast<bool>(complete_); }

   private:
    friend class Comm;
    explicit Request(std::function<void()> c) : complete_(std::move(c)) {}
    std::function<void()> complete_;
  };

  template <typename T>
  [[nodiscard]] Request isend(int dest, int tag, std::span<const T> data) {
    send(dest, tag, data);  // buffered: completes eagerly
    return Request{};
  }

  template <typename T>
  [[nodiscard]] Request irecv(int src, int tag, std::span<T> out) {
    return Request([this, src, tag, out] { recv(src, tag, out); });
  }

  static void waitall(std::span<Request> reqs) {
    for (Request& r : reqs) r.wait();
  }

  void barrier();

  /// Record liveness with the heartbeat monitor (no-op when heartbeats
  /// are off). Called implicitly by every communication operation; a
  /// compute-heavy loop that goes long between messages should call it
  /// directly. Throws comm_error(PeerFailed) when this rank was already
  /// evicted by the monitor - the rank discovers its own eviction at
  /// the next beat and unwinds instead of racing the survivors.
  void heartbeat();

  /// Allreduce of a scalar (Sum/Min/Max).
  template <typename T>
  [[nodiscard]] T allreduce(T local, Op op) {
    std::vector<T> all(static_cast<std::size_t>(size()));
    allgather_impl(&local, sizeof(T), all.data());
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) {
      switch (op) {
        case Op::Sum: acc = acc + all[i]; break;
        case Op::Min: acc = all[i] < acc ? all[i] : acc; break;
        case Op::Max: acc = acc < all[i] ? all[i] : acc; break;
      }
    }
    return acc;
  }

  /// Gather one value per rank to every rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(T local) {
    std::vector<T> all(static_cast<std::size_t>(size()));
    allgather_impl(&local, sizeof(T), all.data());
    return all;
  }

 private:
  void send_bytes(int dest, int tag, std::span<const std::byte> data);
  void recv_bytes(int src, int tag, std::span<std::byte> out);
  void allgather_impl(const void* local, std::size_t bytes, void* out);

  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` copies of `rank_fn` as threads sharing one world and
/// join them all. Every rank's exception is collected; peer-failure
/// cascades (comm_error{PeerFailed} raised because *another* rank
/// already failed) are filtered out when a primary cause exists. One
/// primary error is rethrown as-is; several are aggregated into a
/// rank_errors naming each failing rank.
void run(int nranks, const std::function<void(Comm&)>& rank_fn);

}  // namespace syclport::mpi
