#include "hwmodel/comm_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/factorize.hpp"

namespace syclport::hw {

int ranks_for(PlatformId p, const Variant& v) {
  const Platform& hw = platform(p);
  switch (v.model) {
    case Model::MPI:
      return hw.cores;
    case Model::MPI_OpenMP:
      return std::max(1, hw.numa_domains);
    default:
      return 1;
  }
}

std::array<int, 3> rank_grid(int ranks, int dims) {
  return balanced_factors(ranks, dims);
}

CommParams comm_params(const Platform& hw) {
  CommParams c;
  // Wider machines pay slightly more per message (more contention).
  c.latency_us = 0.7 + 0.004 * hw.cores;
  return c;
}

double halo_exchange_time_s(const Platform& hw, int ranks, int dims,
                            const std::array<std::size_t, 3>& extent,
                            int depth, std::size_t point_bytes) {
  if (ranks <= 1 || depth <= 0) return 0.0;
  const auto grid = rank_grid(ranks, dims);
  const CommParams cp = comm_params(hw);

  // Busiest rank: interior rank with 2 neighbours per decomposed dim.
  double bytes = 0.0;
  int messages = 0;
  for (int d = 0; d < dims; ++d) {
    if (grid[static_cast<std::size_t>(d)] < 2) continue;
    double face = 1.0;
    for (int e = 0; e < dims; ++e) {
      if (e == d) continue;
      face *= static_cast<double>(extent[static_cast<std::size_t>(e)]) /
              grid[static_cast<std::size_t>(e)];
    }
    bytes += 2.0 * face * depth * static_cast<double>(point_bytes);
    messages += 2;
  }
  // Pack + copy + unpack all cross the memory system; every rank
  // exchanges concurrently, sharing the chip's aggregate bandwidth.
  const double agg_bw = hw.stream_bw_gbs * 1e9 * cp.bw_fraction;
  const double wire_s = bytes * 2.0 * ranks / agg_bw;
  const double lat_s = messages * cp.latency_us * 1e-6;
  return lat_s + wire_s;
}

}  // namespace syclport::hw
