# Empty compiler generated dependencies file for syclport_runtime.
# This may be replaced when dependencies are built.
