// Unit tests for the runtime substrate: thread pool scheduling (static /
// dynamic / work-stealing), launch params, and fiber-based work-group
// barriers with pooled stacks.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/fiber.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = syclport::rt;

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  rt::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run_chunks(100, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeWithoutOverlap) {
  rt::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1234);
  pool.parallel_for(1234, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOnePoolIsSerial) {
  rt::ThreadPool pool(1);
  int counter = 0;  // unsynchronized on purpose: must be safe when serial
  pool.run_chunks(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 50);
}

TEST(ThreadPool, EmptyJobIsNoop) {
  rt::ThreadPool pool(2);
  pool.run_chunks(0, [&](std::size_t) { FAIL() << "must not run"; });
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesFirstException) {
  rt::ThreadPool pool(2);
  EXPECT_THROW(pool.run_chunks(8,
                               [&](std::size_t c) {
                                 if (c == 3) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  rt::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.run_chunks(16, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 16);
  }
}

TEST(ThreadPool, GlobalPoolHasAtLeastTwoWorkers) {
  EXPECT_GE(rt::ThreadPool::global().size(), 2u);
}

// --- scheduling policies and launch params ----------------------------------

namespace {

/// RAII helper pinning the process schedule/grain for one test.
struct WithParams {
  explicit WithParams(rt::Schedule s, std::size_t grain = 1)
      : scope(s, grain) {}
  rt::ScopedLaunchParams scope;
};

/// A little spin work so chunks are not instantaneous (volatile so the
/// loop survives optimisation even when the result is discarded).
double spin(int iters) {
  volatile double x = 1.0;
  for (int i = 0; i < iters; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

}  // namespace

TEST(ThreadPool, ScheduleParsing) {
  EXPECT_EQ(rt::parse_schedule("static"), rt::Schedule::Static);
  EXPECT_EQ(rt::parse_schedule("dynamic"), rt::Schedule::Dynamic);
  EXPECT_EQ(rt::parse_schedule("steal"), rt::Schedule::Steal);
  EXPECT_FALSE(rt::parse_schedule("guided").has_value());
  EXPECT_FALSE(rt::parse_schedule("").has_value());
  EXPECT_STREQ(rt::to_string(rt::Schedule::Steal), "steal");
  EXPECT_STREQ(rt::to_string(rt::Schedule::Static), "static");
  EXPECT_STREQ(rt::to_string(rt::Schedule::Dynamic), "dynamic");
}

TEST(ThreadPool, ScopedLaunchParamsRestores) {
  const rt::LaunchParams before = rt::launch_params();
  {
    rt::ScopedLaunchParams scope(rt::Schedule::Static, std::size_t{128});
    EXPECT_EQ(rt::launch_params().schedule, rt::Schedule::Static);
    EXPECT_EQ(rt::launch_params().grain, 128u);
    {
      // Partial override: only the grain changes.
      rt::ScopedLaunchParams inner(std::nullopt, std::size_t{7});
      EXPECT_EQ(rt::launch_params().schedule, rt::Schedule::Static);
      EXPECT_EQ(rt::launch_params().grain, 7u);
    }
    EXPECT_EQ(rt::launch_params().grain, 128u);
  }
  EXPECT_EQ(rt::launch_params().schedule, before.schedule);
  EXPECT_EQ(rt::launch_params().grain, before.grain);
}

TEST(ThreadPool, EveryScheduleCoversAllChunksExactlyOnce) {
  for (const auto sched : {rt::Schedule::Static, rt::Schedule::Dynamic,
                           rt::Schedule::Steal}) {
    WithParams params(sched);
    rt::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(503);
    pool.run_chunks(503, [&](std::size_t c) { hits[c].fetch_add(1); });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << rt::to_string(sched);
    const auto st = rt::ThreadPool::last_stats();
    EXPECT_EQ(st.schedule, sched);
    EXPECT_EQ(st.chunks, 503u);
  }
}

TEST(ThreadPool, StealingRebalancesUnbalancedChunks) {
  WithParams params(rt::Schedule::Steal);
  rt::ThreadPool pool(4);
  // Front-loaded work: the first workers' static shares are ~100x the
  // last's, so idle workers must steal to finish early chunks.
  std::vector<std::atomic<int>> hits(256);
  pool.run_chunks(256, [&](std::size_t c) {
    spin(c < 64 ? 20000 : 200);
    hits[c].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  const auto st = rt::ThreadPool::last_stats();
  EXPECT_TRUE(st.parallel);
  EXPECT_EQ(st.chunks, 256u);
  // stolen_chunks never exceeds the launch's chunk count.
  EXPECT_LE(st.stolen_chunks, 256u);
}

TEST(ThreadPool, ExceptionCancelsRemainingChunks) {
  for (const auto sched : {rt::Schedule::Static, rt::Schedule::Dynamic,
                           rt::Schedule::Steal}) {
    WithParams params(sched);
    rt::ThreadPool pool(2);
    const std::size_t nchunks = 20000;
    std::atomic<std::size_t> executed{0};
    std::atomic<bool> thrown{false};
    EXPECT_THROW(pool.run_chunks(nchunks,
                                 [&](std::size_t) {
                                   if (!thrown.exchange(true))
                                     throw std::runtime_error("boom");
                                   executed.fetch_add(1);
                                   spin(100);
                                 }),
                 std::runtime_error)
        << rt::to_string(sched);
    // The cancel flag set by the first exception must skip (nearly all of)
    // the remaining chunks instead of running the job to completion.
    EXPECT_LT(executed.load(), nchunks - 1) << rt::to_string(sched);
  }
}

TEST(ThreadPool, ExceptionUnderStealingStillPropagates) {
  WithParams params(rt::Schedule::Steal);
  rt::ThreadPool pool(4);
  // Heavy head so thieves are active when the late chunk throws.
  EXPECT_THROW(pool.run_chunks(512,
                               [&](std::size_t c) {
                                 if (c < 32) spin(20000);
                                 if (c == 500)
                                   throw std::logic_error("stolen boom");
                               }),
               std::logic_error);
  // The pool must remain usable after a cancelled job.
  std::atomic<int> n{0};
  pool.run_chunks(64, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, GrainControlsMinimumChunkSize) {
  WithParams params(rt::Schedule::Steal, 256);
  rt::ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    std::lock_guard lock(mu);
    ranges.emplace_back(b, e);
  });
  std::size_t covered = 0;
  for (const auto& [b, e] : ranges) {
    ASSERT_LT(b, e);
    covered += e - b;
    // Every chunk except the tail must honour the 256-iteration grain.
    if (e != 1000) {
      EXPECT_GE(e - b, 256u);
    }
  }
  EXPECT_EQ(covered, 1000u);
}

TEST(ThreadPool, MoveOnlyCallableProvesNoStdFunctionOnFastPath) {
  // std::function requires a copyable callable; accepting a move-only
  // lambda proves the templated launch path never constructs one.
  rt::ThreadPool pool(3);
  auto flag = std::make_unique<std::atomic<int>>(0);
  std::atomic<int>* raw = flag.get();
  auto fn = [p = std::move(flag)](std::size_t) { p->fetch_add(1); };
  static_assert(!std::is_copy_constructible_v<decltype(fn)>);
  pool.run_chunks(100, fn);
  EXPECT_EQ(raw->load(), 100);
  std::atomic<int> total{0};
  auto fn2 = [q = std::make_unique<int>(1), &total](std::size_t b,
                                                    std::size_t e) {
    total.fetch_add(static_cast<int>(e - b) * *q);
  };
  static_assert(!std::is_copy_constructible_v<decltype(fn2)>);
  pool.parallel_for(1000, fn2);
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ReentrantLaunchRunsInlineWithoutDeadlock) {
  rt::ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.run_chunks(6, [&](std::size_t) {
    // A launch from inside a running chunk must not block on the busy
    // workers; it degrades to inline serial execution.
    pool.run_chunks(10, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 60);
}

TEST(ThreadPool, RepeatedLaunchesStressAllSchedules) {
  for (const auto sched : {rt::Schedule::Static, rt::Schedule::Dynamic,
                           rt::Schedule::Steal}) {
    WithParams params(sched);
    rt::ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
      std::atomic<int> n{0};
      pool.run_chunks(17, [&](std::size_t) { n.fetch_add(1); });
      ASSERT_EQ(n.load(), 17) << rt::to_string(sched) << " round " << round;
    }
  }
}

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  rt::Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.resume());
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  rt::Fiber f([&] {
    trace.push_back(1);
    rt::Fiber::yield();
    trace.push_back(2);
  });
  EXPECT_TRUE(f.resume());
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_FALSE(f.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
}

TEST(Fiber, PropagatesException) {
  rt::Fiber f([] { throw std::logic_error("inside fiber"); });
  EXPECT_THROW(f.resume(), std::logic_error);
  EXPECT_TRUE(f.done());
}

TEST(BarrierGroup, FastPathWhenNoBarrier) {
  std::vector<int> out(16, 0);
  const bool used = rt::run_barrier_group(16, [&](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  EXPECT_FALSE(used);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BarrierGroup, BarrierSynchronizesPhases) {
  // Phase 1: each item writes its slot. Barrier. Phase 2: each item reads
  // its neighbour's slot - only correct if the barrier is honoured.
  const std::size_t n = 32;
  std::vector<int> a(n, -1), b(n, -1);
  const bool used = rt::run_barrier_group(n, [&](std::size_t i) {
    a[i] = static_cast<int>(i) * 10;
    rt::group_barrier();
    b[i] = a[(i + 1) % n];
  });
  EXPECT_TRUE(used);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(b[i], static_cast<int>((i + 1) % n) * 10);
}

TEST(BarrierGroup, MultipleBarriers) {
  const std::size_t n = 8;
  std::vector<int> v(n, 0);
  rt::run_barrier_group(n, [&](std::size_t i) {
    for (int round = 0; round < 5; ++round) {
      v[i] += 1;
      rt::group_barrier();
      // All items must observe everyone having completed the round.
      int sum = std::accumulate(v.begin(), v.end(), 0);
      EXPECT_EQ(sum, static_cast<int>(n) * (round + 1));
      rt::group_barrier();
    }
  });
}

TEST(BarrierGroup, TreeReductionPattern) {
  // The user-defined binary-tree reduction the paper mentions (S4.2).
  const std::size_t n = 64;
  std::vector<double> scratch(n);
  rt::run_barrier_group(n, [&](std::size_t i) {
    scratch[i] = static_cast<double>(i + 1);
    rt::group_barrier();
    for (std::size_t stride = n / 2; stride > 0; stride /= 2) {
      if (i < stride) scratch[i] += scratch[i + stride];
      rt::group_barrier();
    }
  });
  EXPECT_DOUBLE_EQ(scratch[0], 64.0 * 65.0 / 2.0);
}

TEST(BarrierGroup, BarrierOutsideGroupThrows) {
  EXPECT_THROW(rt::group_barrier(), std::logic_error);
}

TEST(BarrierGroup, ExceptionInTaskPropagates) {
  EXPECT_THROW(rt::run_barrier_group(4,
                                     [&](std::size_t i) {
                                       if (i == 2)
                                         throw std::runtime_error("task");
                                     }),
               std::runtime_error);
}

TEST(BarrierGroup, SingleItemGroupWithBarrier) {
  int phases = 0;
  const bool used = rt::run_barrier_group(1, [&](std::size_t) {
    ++phases;
    rt::group_barrier();
    ++phases;
  });
  EXPECT_TRUE(used);
  EXPECT_EQ(phases, 2);  // probe-fiber design: nothing is re-executed
}

TEST(BarrierGroup, NoReexecutionOfPreBarrierWrites) {
  // Read-modify-writes before the first barrier must happen exactly once
  // (this is what the probe-fiber design guarantees over naive restart).
  const std::size_t n = 4;
  std::vector<int> v(n, 0);
  rt::run_barrier_group(n, [&](std::size_t i) {
    v[i] += 1;
    rt::group_barrier();
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(v[i], 1);
}

TEST(BarrierGroup, NonUniformBarrierIsAnError) {
  EXPECT_THROW(rt::run_barrier_group(4,
                                     [&](std::size_t i) {
                                       if (i == 2) rt::group_barrier();
                                     }),
               std::logic_error);
}

TEST(BarrierGroup, MoveOnlyTaskRunsWithoutStdFunction) {
  // The templated fast path must invoke the work-item body without
  // constructing a std::function (which would require copyability).
  std::vector<int> out(8, 0);
  auto guard = std::make_unique<int>(1);
  auto task = [&out, g = std::move(guard)](std::size_t i) {
    out[i] = static_cast<int>(i) * *g;
  };
  static_assert(!std::is_copy_constructible_v<decltype(task)>);
  EXPECT_FALSE(rt::run_barrier_group(8, task));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(FiberStackPool, RepeatedGroupsReuseStacks) {
  // Warm the pool: the first barrier group on this thread may allocate.
  rt::run_barrier_group(4, [&](std::size_t) { rt::group_barrier(); });
  const auto before = rt::fiber_stack_stats();
  for (int round = 0; round < 10; ++round) {
    std::vector<int> v(4, 0), w(4, 0);
    rt::run_barrier_group(4, [&](std::size_t i) {
      v[i] = static_cast<int>(i) + 1;
      rt::group_barrier();
      w[i] = v[(i + 1) % 4];
    });
    for (std::size_t i = 0; i < 4; ++i)
      ASSERT_EQ(w[i], static_cast<int>((i + 1) % 4) + 1);
  }
  const auto after = rt::fiber_stack_stats();
  // 10 rounds x 4 fibers ran entirely off recycled stacks.
  EXPECT_EQ(after.allocated, before.allocated);
  EXPECT_GE(after.reused, before.reused + 40);
}

TEST(FiberStackPool, FastPathGroupsUseOneFiberEach) {
  rt::run_barrier_group(4, [&](std::size_t) {});  // warm the probe stack
  const auto before = rt::fiber_stack_stats();
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(64, 0);
    rt::run_barrier_group(64, [&](std::size_t i) {
      out[i] = 1;
    });
  }
  const auto after = rt::fiber_stack_stats();
  EXPECT_EQ(after.allocated, before.allocated);
  EXPECT_EQ(after.reused, before.reused + 50);  // one probe fiber per group
}

TEST(ThreadPool, ScopedSerialExecutionForcesInlineRuns) {
  auto& pool = rt::ThreadPool::global();
  std::atomic<std::size_t> n{0};
  {
    rt::ScopedSerialExecution serial;
    EXPECT_TRUE(rt::serial_execution_forced());
    pool.parallel_for(10'000, [&](std::size_t b, std::size_t e) {
      n.fetch_add(e - b, std::memory_order_relaxed);
    });
    EXPECT_FALSE(rt::ThreadPool::last_stats().parallel);
    {
      rt::ScopedSerialExecution nested;
      EXPECT_TRUE(rt::serial_execution_forced());
    }
    EXPECT_TRUE(rt::serial_execution_forced());  // nesting restores
  }
  EXPECT_FALSE(rt::serial_execution_forced());
  EXPECT_EQ(n.load(), 10'000u);
}
