#pragma once
/// \file dist.hpp
/// A genuinely distributed OPS backend over mini-MPI: every rank owns a
/// block of the grid with ghost layers, par_loops execute rank-locally,
/// reads through nonzero stencils trigger face halo exchanges first,
/// and global reductions combine across ranks - the owner-compute
/// execution model of OPS-MPI (paper §3), running on real messages
/// rather than the shared-memory shortcut the modeling backends use.
///
/// Scope: interior sweeps and global reductions over fields whose halo
/// depth covers the stencils used (the structure all of this study's
/// interior kernels share). Kernels receive the same ACC accessors as
/// the shared-memory backends, so kernel code is reused verbatim.

#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <tuple>

#include "core/reducer.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/halo.hpp"
#include "ops/arg.hpp"

namespace syclport::ops::dist {

/// Per-rank execution context.
class DistContext {
 public:
  DistContext(mpi::Comm& comm, int dims)
      : comm_(&comm), cart_(comm.rank(), comm.size(), dims), dims_(dims) {}

  [[nodiscard]] mpi::Comm& comm() const { return *comm_; }
  [[nodiscard]] const mpi::CartDecomp& cart() const { return cart_; }
  [[nodiscard]] int dims() const { return dims_; }

 private:
  mpi::Comm* comm_;
  mpi::CartDecomp cart_;
  int dims_;
};

/// A distributed field: the rank-local block of a global grid, with
/// ghost layers deep enough for the stencils applied to it.
template <typename T>
class DistDat {
 public:
  DistDat(DistContext& ctx, std::array<std::size_t, 3> global, int halo)
      : ctx_(&ctx), global_(global), halo_(halo) {
    field_.dims = ctx.dims();
    field_.halo = halo;
    for (int d = 0; d < ctx.dims(); ++d) {
      auto [b, e] = ctx.cart().owned(d, global[static_cast<std::size_t>(d)]);
      begin_[static_cast<std::size_t>(d)] = b;
      field_.local[static_cast<std::size_t>(d)] = e - b;
    }
    field_.allocate();
  }

  /// Fill the owned interior from a function of *global* coordinates.
  void init(const std::function<T(std::size_t, std::size_t, std::size_t)>& f) {
    for_owned([&](std::size_t gi, std::size_t gj, std::size_t gk,
                  std::ptrdiff_t li, std::ptrdiff_t lj, std::ptrdiff_t lk) {
      field_.at(li, lj, lk) = f(gi, gj, gk);
    });
  }

  /// Iterate owned points with both global and local coordinates.
  template <typename Fn>
  void for_owned(Fn&& fn) {
    const auto n0 = field_.local[0];
    const auto n1 = ctx_->dims() >= 2 ? field_.local[1] : 1;
    const auto n2 = ctx_->dims() >= 3 ? field_.local[2] : 1;
    for (std::size_t i = 0; i < n0; ++i)
      for (std::size_t j = 0; j < n1; ++j)
        for (std::size_t k = 0; k < n2; ++k)
          fn(begin_[0] + i, begin_[1] + j, begin_[2] + k,
             static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j),
             static_cast<std::ptrdiff_t>(k));
  }

  /// Exchange ghost layers with the Cartesian neighbours (collective).
  void exchange_halos() {
    mpi::exchange_halos(ctx_->comm(), ctx_->cart(), field_);
  }

  [[nodiscard]] mpi::LocalField<T>& field() { return field_; }
  [[nodiscard]] DistContext& ctx() const { return *ctx_; }
  [[nodiscard]] int halo() const { return halo_; }
  [[nodiscard]] const std::array<std::size_t, 3>& global() const {
    return global_;
  }
  [[nodiscard]] const std::array<std::size_t, 3>& begin() const {
    return begin_;
  }

  /// Sum of the owned interior across all ranks (collective).
  [[nodiscard]] double global_sum() {
    double local = 0.0;
    for_owned([&](std::size_t, std::size_t, std::size_t, std::ptrdiff_t li,
                  std::ptrdiff_t lj, std::ptrdiff_t lk) {
      local += static_cast<double>(field_.at(li, lj, lk));
    });
    return ctx_->comm().allreduce(local, mpi::Op::Sum);
  }

 private:
  DistContext* ctx_;
  std::array<std::size_t, 3> global_;
  std::array<std::size_t, 3> begin_{0, 0, 0};
  int halo_;
  mpi::LocalField<T> field_;
};

template <typename T>
struct DistArg {
  DistDat<T>* dat;
  Stencil st;
  Acc acc;
};

template <typename T>
[[nodiscard]] DistArg<T> arg(DistDat<T>& d, Stencil st, Acc a) {
  if (st.max_radius() > d.halo())
    throw std::invalid_argument("dist::arg: stencil exceeds halo depth");
  return {&d, st, a};
}

template <typename T>
struct DistRedArg {
  T* target;
  RedOp op;
};

template <typename T>
[[nodiscard]] DistRedArg<T> reduce(T& target, RedOp op) {
  return {&target, op};
}

namespace detail {

/// Type-erased hook so par_loop can find the iteration space (the first
/// dat argument) without caring about T.
struct IterSpace {
  std::function<void(const std::function<void(std::ptrdiff_t, std::ptrdiff_t,
                                              std::ptrdiff_t)>&)>
      iterate;
};

template <typename T>
struct DatBinder {
  DistDat<T>* dat;
  bool needs_halo;

  void prepare() const {
    if (needs_halo) dat->exchange_halos();
  }
  [[nodiscard]] ACC<T> make(std::ptrdiff_t li, std::ptrdiff_t lj,
                            std::ptrdiff_t lk) const {
    auto& f = dat->field();
    if (f.dims == 1) return ACC<T>(&f.at(li), 1, 0, 0);
    if (f.dims == 2) {
      const auto s_mid = static_cast<std::ptrdiff_t>(f.padded(1));
      return ACC<T>(&f.at(li, lj), 1, s_mid, 0);
    }
    const auto s_mid = static_cast<std::ptrdiff_t>(f.padded(2));
    const auto s_slow = s_mid * static_cast<std::ptrdiff_t>(f.padded(1));
    return ACC<T>(&f.at(li, lj, lk), 1, s_mid, s_slow);
  }
  void finish(DistContext&) const {}
  void offer_iter(IterSpace& is) const {
    if (is.iterate) return;
    DistDat<T>* d = dat;
    is.iterate = [d](const auto& fn) {
      d->for_owned([&](std::size_t, std::size_t, std::size_t,
                       std::ptrdiff_t li, std::ptrdiff_t lj,
                       std::ptrdiff_t lk) { fn(li, lj, lk); });
    };
  }
};

template <typename T>
struct RedBinder {
  T* target;
  RedOp op;
  std::shared_ptr<T> local = std::make_shared<T>();

  RedBinder(T* t, RedOp o) : target(t), op(o) {
    switch (op) {
      case RedOp::Sum: *local = T{}; break;
      case RedOp::Min: *local = std::numeric_limits<T>::max(); break;
      case RedOp::Max: *local = std::numeric_limits<T>::lowest(); break;
    }
  }
  void prepare() const {}
  [[nodiscard]] Reducer<T> make(std::ptrdiff_t, std::ptrdiff_t,
                                std::ptrdiff_t) const {
    return Reducer<T>(local.get(), op);
  }
  void finish(DistContext& ctx) const {
    const T global = ctx.comm().allreduce(
        *local, op == RedOp::Sum   ? mpi::Op::Sum
                : op == RedOp::Min ? mpi::Op::Min
                                   : mpi::Op::Max);
    Reducer<T>(target, op).combine(global);
  }
  void offer_iter(IterSpace&) const {}
};

template <typename T>
DatBinder<T> make_binder(const DistArg<T>& a) {
  const bool reads_stencil =
      (a.acc == Acc::R || a.acc == Acc::RW) && a.st.max_radius() > 0;
  return {a.dat, reads_stencil};
}

template <typename T>
RedBinder<T> make_binder(const DistRedArg<T>& a) {
  return RedBinder<T>(a.target, a.op);
}

}  // namespace detail

/// Distributed par_loop over the full interior of the global grid.
/// Collective: every rank must call it with the same arguments.
template <typename K, typename... Args>
void par_loop(DistContext& ctx, K&& kernel, Args... args) {
  auto binders = std::make_tuple(detail::make_binder(args)...);

  detail::IterSpace is;
  std::apply([&](const auto&... b) { (b.offer_iter(is), ...); }, binders);
  if (!is.iterate)
    throw std::invalid_argument("dist::par_loop: needs at least one dat arg");

  std::apply([](const auto&... b) { (b.prepare(), ...); }, binders);
  is.iterate([&](std::ptrdiff_t li, std::ptrdiff_t lj, std::ptrdiff_t lk) {
    std::apply([&](const auto&... b) { kernel(b.make(li, lj, lk)...); },
               binders);
  });
  std::apply([&](const auto&... b) { (b.finish(ctx), ...); }, binders);
}

}  // namespace syclport::ops::dist
