// Unit tests for the hardware performance model: platform descriptors,
// execution profiles, work-group heuristics, cache model, kernel-time
// assembly and the MPI halo model.

#include <gtest/gtest.h>

#include "hwmodel/comm_model.hpp"
#include "hwmodel/device_model.hpp"
#include "hwmodel/exec_profile.hpp"
#include "hwmodel/memory_model.hpp"
#include "hwmodel/platform.hpp"
#include "hwmodel/quirks.hpp"
#include "hwmodel/workgroup.hpp"

namespace hw = syclport::hw;
using syclport::AppId;
using syclport::Model;
using syclport::PlatformId;
using syclport::Toolchain;
using syclport::Variant;

TEST(Platform, Table1BandwidthsMatchPaper) {
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::A100).stream_bw_gbs, 1310.0);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::MI250X).stream_bw_gbs, 1290.0);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::Max1100).stream_bw_gbs, 803.0);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::Xeon8360Y).stream_bw_gbs, 296.0);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::GenoaX).stream_bw_gbs, 561.0);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::Altra).stream_bw_gbs, 167.0);
}

TEST(Platform, CacheSizesMatchPaperSection41) {
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::A100).llc.bytes, 40.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::MI250X).llc.bytes, 16.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(hw::platform(PlatformId::Max1100).llc.bytes,
                   208.0 * 1024 * 1024);
  // Genoa-X: 2 x 1.1 GB L3 (paper §4.3).
  EXPECT_NEAR(hw::platform(PlatformId::GenoaX).llc.bytes, 2.2e9, 1e6);
}

TEST(Platform, StreamBelowPeak) {
  for (const auto* p : hw::all_platforms())
    EXPECT_LT(p->stream_bw_gbs, p->peak_bw_gbs) << p->name;
}

TEST(ExecProfile, DpcppCpuLaunchesAreExpensive) {
  // Paper §4.2: DPC++ goes through OpenCL per launch; OpenSYCL maps to
  // OpenMP at compile time.
  const auto dpcpp = hw::exec_profile(PlatformId::Xeon8360Y,
                                      {Model::SYCLNDRange, Toolchain::DPCPP});
  const auto osycl = hw::exec_profile(
      PlatformId::Xeon8360Y, {Model::SYCLNDRange, Toolchain::OpenSYCL});
  const auto omp = hw::exec_profile(PlatformId::Xeon8360Y,
                                    {Model::MPI_OpenMP, Toolchain::Native});
  EXPECT_GT(dpcpp.launch_us, 4.0 * osycl.launch_us);
  EXPECT_GT(osycl.launch_us, omp.launch_us);
}

TEST(ExecProfile, CpuSyclReductionsCost6To7x) {
  const auto e = hw::exec_profile(PlatformId::Xeon8360Y,
                                  {Model::SYCLNDRange, Toolchain::OpenSYCL});
  EXPECT_GE(e.reduction_factor, 6.0);
  EXPECT_LE(e.reduction_factor, 7.0);
}

TEST(ExecProfile, OpenSyclCannotUseUnsafeAtomicsOnMI250X) {
  const auto osycl = hw::exec_profile(PlatformId::MI250X,
                                      {Model::SYCLNDRange, Toolchain::OpenSYCL});
  const auto dpcpp = hw::exec_profile(PlatformId::MI250X,
                                      {Model::SYCLNDRange, Toolchain::DPCPP});
  EXPECT_FALSE(osycl.unsafe_atomics);
  EXPECT_TRUE(dpcpp.unsafe_atomics);
}

TEST(ExecProfile, Max1100MostSensitiveToFlatShapes) {
  const Variant flat{Model::SYCLFlat, Toolchain::DPCPP};
  const auto max = hw::exec_profile(PlatformId::Max1100, flat);
  const auto a100 = hw::exec_profile(PlatformId::A100, flat);
  EXPECT_GT(max.flat_penalty, a100.flat_penalty);
}

TEST(Workgroup, PaddingUtilizationExact) {
  EXPECT_DOUBLE_EQ(hw::padding_utilization({256, 1, 1}, {64, 1, 1}, 1), 1.0);
  EXPECT_DOUBLE_EQ(hw::padding_utilization({100, 1, 1}, {64, 1, 1}, 1),
                   100.0 / 128.0);
  EXPECT_DOUBLE_EQ(hw::padding_utilization({2, 100, 1}, {1, 64, 1}, 2),
                   200.0 / 256.0);
}

TEST(Workgroup, CoalescingFullWhenWideEnough) {
  EXPECT_DOUBLE_EQ(hw::coalescing_factor(32, 8, 64.0), 1.0);
  EXPECT_DOUBLE_EQ(hw::coalescing_factor(2, 8, 64.0), 16.0 / 64.0);
  EXPECT_DOUBLE_EQ(hw::coalescing_factor(1, 4, 64.0), 4.0 / 64.0);
}

TEST(Workgroup, DpcppFlatWastesNarrowBoundaryLoops) {
  // A CloverLeaf-2D column boundary loop: 2 x 7680 iteration space.
  hw::LoopProfile lp;
  lp.dims = 2;
  lp.extent = {7680, 2, 1};
  lp.elem_bytes = 8;
  const auto& a100 = hw::platform(PlatformId::A100);
  const auto flat = hw::choose_workgroup(
      a100, {Model::SYCLFlat, Toolchain::DPCPP}, lp);
  const auto nd = hw::choose_workgroup(
      a100, {Model::SYCLNDRange, Toolchain::DPCPP}, lp);
  EXPECT_LT(flat.utilization, 0.05);  // 2 useful of 256-wide groups
  EXPECT_GT(nd.utilization, 0.4);     // tuned shape clamps to the extent
}

TEST(Workgroup, InteriorLoopsCoalesceForAllHeuristics) {
  hw::LoopProfile lp;
  lp.dims = 2;
  lp.extent = {7680, 7680, 1};
  lp.elem_bytes = 8;
  const auto& a100 = hw::platform(PlatformId::A100);
  for (Toolchain tc : {Toolchain::DPCPP, Toolchain::OpenSYCL}) {
    const auto wg = hw::choose_workgroup(a100, {Model::SYCLFlat, tc}, lp);
    EXPECT_GE(wg.coalescing, 0.99) << static_cast<int>(tc);
    EXPECT_GT(wg.utilization, 0.9);
  }
}

TEST(Workgroup, CpuChoiceIsDegenerate) {
  hw::LoopProfile lp;
  lp.dims = 3;
  lp.extent = {320, 320, 320};
  const auto wg = hw::choose_workgroup(hw::platform(PlatformId::Xeon8360Y),
                                       {Model::SYCLFlat, Toolchain::DPCPP}, lp);
  EXPECT_DOUBLE_EQ(wg.utilization, 1.0);
  EXPECT_DOUBLE_EQ(wg.coalescing, 1.0);
}

TEST(MemoryModel, NoStencilNoMultiplier) {
  hw::LoopProfile lp;
  lp.dims = 3;
  lp.extent = {320, 320, 320};
  EXPECT_DOUBLE_EQ(
      hw::stencil_read_multiplier(hw::platform(PlatformId::A100), lp), 1.0);
}

TEST(MemoryModel, HighOrderStencilWorseOnSmallCache) {
  // RTM-like: radius-4 star, 320^3 FP32, a handful of arrays.
  hw::LoopProfile lp;
  lp.dims = 3;
  lp.extent = {320, 320, 320};
  lp.elem_bytes = 4;
  lp.radius_fast = lp.radius_mid = lp.radius_slow = 4;
  lp.n_arrays = 3;
  const double mi =
      hw::stencil_read_multiplier(hw::platform(PlatformId::MI250X), lp);
  const double a100 =
      hw::stencil_read_multiplier(hw::platform(PlatformId::A100), lp);
  const double max =
      hw::stencil_read_multiplier(hw::platform(PlatformId::Max1100), lp);
  EXPECT_GT(mi, a100);    // 16 MB vs 40 MB L2 (paper: 19% vs 48% eff.)
  EXPECT_GE(a100, max);   // 208 MB L2 best (paper: RTM best on Max 1100)
  EXPECT_GE(mi, 1.0);
  EXPECT_LE(mi, 81.0);
}

TEST(MemoryModel, MultiplierMonotonicInCacheSize) {
  hw::LoopProfile lp;
  lp.dims = 3;
  lp.extent = {1000, 1000, 1000};
  lp.elem_bytes = 4;
  lp.radius_fast = lp.radius_mid = lp.radius_slow = 4;
  lp.n_arrays = 2;
  hw::Platform small = hw::platform(PlatformId::MI250X);
  hw::Platform big = small;
  big.llc.bytes *= 8;
  EXPECT_GE(hw::stencil_read_multiplier(small, lp),
            hw::stencil_read_multiplier(big, lp));
}

TEST(MemoryModel, TunedShapesReduceExcessTraffic) {
  hw::LoopProfile lp;
  lp.dims = 3;
  lp.extent = {1000, 1000, 1000};
  lp.elem_bytes = 4;
  lp.radius_fast = lp.radius_mid = lp.radius_slow = 4;
  lp.n_arrays = 3;
  const auto& p = hw::platform(PlatformId::MI250X);
  EXPECT_LT(hw::stencil_read_multiplier(p, lp, 0.7),
            hw::stencil_read_multiplier(p, lp, 1.0));
}

TEST(MemoryModel, ResidencyGivesSuperStreamBandwidth) {
  // A loop whose working set fits the Genoa-X 2.2 GB L3 runs faster
  // than STREAM - the paper's >100% efficiencies (§4.2, §4.3).
  const auto& genoa = hw::platform(PlatformId::GenoaX);
  hw::LoopProfile lp;
  lp.working_set = 100e6;  // fits
  const double hit = hw::llc_hit_probability(genoa, lp);
  EXPECT_GT(hit, 0.4);
  const double t = hw::memory_time_s(genoa, 1e9, hit, genoa.stream_bw_gbs);
  const double t_stream = 1e9 / (genoa.stream_bw_gbs * 1e9);
  EXPECT_LT(t, t_stream);
}

TEST(Quirks, DpcppFlatCloverLeaf2DPenalisedOnGpus) {
  const Variant flat{Model::SYCLFlat, Toolchain::DPCPP};
  EXPECT_GT(hw::quirk_factor(PlatformId::A100, flat, AppId::CloverLeaf2D,
                             hw::KernelClass::Interior),
            2.0);
  EXPECT_DOUBLE_EQ(hw::quirk_factor(PlatformId::Xeon8360Y, flat,
                                    AppId::CloverLeaf2D,
                                    hw::KernelClass::Interior),
                   1.0);
}

TEST(Quirks, VectorizationFailuresOnAltra) {
  EXPECT_TRUE(hw::vectorization_fails(PlatformId::Altra, Toolchain::Native,
                                      AppId::OpenSBLI_SN));
  EXPECT_TRUE(hw::vectorization_fails(PlatformId::Altra, Toolchain::OpenSYCL,
                                      AppId::Acoustic));
  EXPECT_FALSE(hw::vectorization_fails(PlatformId::Altra, Toolchain::Native,
                                       AppId::Acoustic));
  EXPECT_FALSE(hw::vectorization_fails(PlatformId::Xeon8360Y,
                                       Toolchain::OpenSYCL, AppId::Acoustic));
}

TEST(DeviceModel, BandwidthBoundLoopNearStream) {
  // A triad-like streaming loop should take ~ bytes / STREAM bandwidth.
  hw::DeviceModel m(PlatformId::A100, {Model::CUDA, Toolchain::Native},
                    AppId::CloverLeaf2D);
  hw::LoopProfile lp;
  lp.dims = 1;
  lp.extent = {1 << 25, 1, 1};
  lp.bytes_read = 2.0 * (1 << 25) * 8;
  lp.bytes_written = 1.0 * (1 << 25) * 8;
  lp.flops = 2.0 * (1 << 25);
  lp.working_set = 3.0 * (1 << 25) * 8;
  const auto kt = m.kernel_time(lp);
  const double t_bw = lp.total_bytes() / (1310.0 * 1e9);
  EXPECT_NEAR(kt.seconds, t_bw, 0.25 * t_bw);
  const double eff = lp.total_bytes() / kt.seconds / (1310.0 * 1e9);
  EXPECT_GT(eff, 0.75);
  EXPECT_LT(eff, 1.1);
}

TEST(DeviceModel, BoundaryLoopDominatedByLaunch) {
  hw::DeviceModel m(PlatformId::MI250X, {Model::HIP, Toolchain::Native},
                    AppId::CloverLeaf2D);
  hw::LoopProfile lp;
  lp.cls = hw::KernelClass::Boundary;
  lp.dims = 2;
  lp.extent = {7680, 2, 1};
  lp.bytes_read = 7680.0 * 2 * 8;
  lp.bytes_written = 7680.0 * 2 * 8;
  const auto kt = m.kernel_time(lp);
  EXPECT_GT(kt.launch_s / kt.seconds, 0.5);
}

TEST(DeviceModel, MI250XBoundaryCostExceedsA100) {
  // Paper §4.1: boundary updates take longer on the MI250X due to
  // higher kernel launch latencies.
  hw::LoopProfile lp;
  lp.cls = hw::KernelClass::Boundary;
  lp.dims = 2;
  lp.extent = {7680, 2, 1};
  lp.bytes_read = lp.bytes_written = 7680.0 * 2 * 8;
  hw::DeviceModel a100(PlatformId::A100, {Model::CUDA, Toolchain::Native},
                       AppId::CloverLeaf2D);
  hw::DeviceModel mi(PlatformId::MI250X, {Model::HIP, Toolchain::Native},
                     AppId::CloverLeaf2D);
  EXPECT_GT(mi.kernel_time(lp).seconds, a100.kernel_time(lp).seconds);
}

TEST(DeviceModel, AtomicsStrategyCostsDependOnFlavour) {
  hw::LoopProfile lp;
  lp.cls = hw::KernelClass::EdgeFlux;
  lp.dims = 1;
  lp.extent = {1 << 20, 1, 1};
  lp.bytes_read = 8.0 * (1 << 20);
  lp.atomic_updates = 6u << 20;
  hw::DeviceModel dpcpp(PlatformId::MI250X,
                        {Model::SYCLNDRange, Toolchain::DPCPP,
                         syclport::Strategy::Atomics},
                        AppId::MGCFD);
  hw::DeviceModel osycl(PlatformId::MI250X,
                        {Model::SYCLNDRange, Toolchain::OpenSYCL,
                         syclport::Strategy::Atomics},
                        AppId::MGCFD);
  // OpenSYCL pays the safe-atomics path on the MI250X (paper §4.3).
  EXPECT_GT(osycl.kernel_time(lp).atomic_s, dpcpp.kernel_time(lp).atomic_s * 2);
}

TEST(DeviceModel, CpuSyclReductionLoopPenalised) {
  hw::LoopProfile lp;
  lp.cls = hw::KernelClass::Reduction;
  lp.reduction = hw::ReductionKind::Tree;
  lp.dims = 2;
  lp.extent = {1024, 1024, 1};
  lp.bytes_read = 8.0 * 1024 * 1024 * 3;
  hw::DeviceModel sycl(PlatformId::Xeon8360Y,
                       {Model::SYCLNDRange, Toolchain::OpenSYCL},
                       AppId::CloverLeaf2D);
  hw::DeviceModel omp(PlatformId::Xeon8360Y,
                      {Model::MPI_OpenMP, Toolchain::Native},
                      AppId::CloverLeaf2D);
  const double ratio =
      sycl.kernel_time(lp).seconds / omp.kernel_time(lp).seconds;
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(CommModel, RankCounts) {
  EXPECT_EQ(hw::ranks_for(PlatformId::Xeon8360Y, {Model::MPI, Toolchain::Native}),
            72);
  EXPECT_EQ(hw::ranks_for(PlatformId::Xeon8360Y,
                          {Model::MPI_OpenMP, Toolchain::Native}),
            2);
  EXPECT_EQ(hw::ranks_for(PlatformId::GenoaX, {Model::MPI, Toolchain::Native}),
            176);
  EXPECT_EQ(hw::ranks_for(PlatformId::A100, {Model::CUDA, Toolchain::Native}),
            1);
}

TEST(CommModel, RankGridBalanced) {
  const auto g = hw::rank_grid(64, 3);
  EXPECT_EQ(g[0] * g[1] * g[2], 64);
  EXPECT_LE(*std::max_element(g.begin(), g.end()), 4 * (*std::min_element(g.begin(), g.end())));
  const auto g2 = hw::rank_grid(72, 3);
  EXPECT_EQ(g2[0] * g2[1] * g2[2], 72);
}

TEST(CommModel, SingleRankFree) {
  EXPECT_DOUBLE_EQ(
      hw::halo_exchange_time_s(hw::platform(PlatformId::GenoaX), 1, 3,
                               {320, 320, 320}, 4, 8),
      0.0);
}

TEST(CommModel, HighOrderHaloFavoursFewerRanks) {
  // RTM on Genoa-X: radius-4 halos make pure MPI (176 ranks) pay much
  // more than MPI+OpenMP (4 ranks) - paper §4.2's 1.46-1.95x effect.
  const auto& genoa = hw::platform(PlatformId::GenoaX);
  const double t_mpi =
      hw::halo_exchange_time_s(genoa, 176, 3, {320, 320, 320}, 4, 4);
  const double t_hybrid =
      hw::halo_exchange_time_s(genoa, 4, 3, {320, 320, 320}, 4, 4);
  EXPECT_GT(t_mpi, 2.0 * t_hybrid);
}

TEST(MemoryModel, GatherCurveInterpolationClampsAndInterpolates) {
  std::array<double, hw::kGatherCachePoints.size()> f{};
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = 10.0 - static_cast<double>(i);  // decreasing with cache size
  EXPECT_DOUBLE_EQ(hw::interp_gather_curve(f, 1.0), f.front());  // clamp low
  EXPECT_DOUBLE_EQ(hw::interp_gather_curve(f, 1e12), f.back());  // clamp high
  // Exactly at a sample point.
  EXPECT_DOUBLE_EQ(hw::interp_gather_curve(f, hw::kGatherCachePoints[3]), f[3]);
  // Between points: monotone decreasing curve stays bracketed.
  const double mid = hw::interp_gather_curve(
      f, 0.5 * (hw::kGatherCachePoints[2] + hw::kGatherCachePoints[3]));
  EXPECT_LT(mid, f[2]);
  EXPECT_GT(mid, f[3]);
}

TEST(DeviceModel, StreamingKernelsReachFullStreamBandwidth) {
  // Triad-like (3 arrays, pointwise) gets STREAM; a 6-array stencil
  // kernel only app_bw_frac of it.
  hw::DeviceModel m(PlatformId::MI250X, {Model::HIP, Toolchain::Native},
                    AppId::CloverLeaf2D);
  hw::LoopProfile triad;
  triad.dims = 1;
  triad.extent = {1u << 26, 1, 1};
  triad.n_arrays = 3;
  triad.bytes_read = 2.0 * (1u << 26) * 8;
  triad.bytes_written = 1.0 * (1u << 26) * 8;
  triad.working_set = 100e9;  // no residency help
  const auto kt = m.kernel_time(triad);
  const double bw = triad.total_bytes() / kt.seconds / 1e9;
  EXPECT_NEAR(bw, 1290.0, 20.0);

  hw::LoopProfile multi = triad;
  multi.n_arrays = 6;
  const double bw6 = multi.total_bytes() / m.kernel_time(multi).seconds / 1e9;
  EXPECT_LT(bw6, 0.86 * 1290.0);
}

TEST(DeviceModel, HighTapKernelsLoseGpuOccupancy) {
  // > 55 taps/point (Store-None-like) caps bandwidth on GPUs but not
  // on CPUs (where the L1 term governs instead).
  auto lp = [](double taps) {
    hw::LoopProfile p;
    p.dims = 3;
    p.extent = {128, 128, 128};
    p.n_arrays = 2;
    const double items = 128.0 * 128 * 128;
    p.bytes_read = items * 40;
    p.bytes_written = items * 40;
    p.cache_access_bytes = items * taps * 8;
    p.working_set = 1e12;
    return p;
  };
  hw::DeviceModel gpu(PlatformId::A100, {Model::CUDA, Toolchain::Native},
                      AppId::OpenSBLI_SN);
  const double lo = gpu.kernel_time(lp(40)).seconds;
  const double hi = gpu.kernel_time(lp(70)).seconds;
  EXPECT_GT(hi, 1.2 * lo);
}

TEST(Workgroup, OpenSyclFlat3DTileIsSquareish) {
  hw::LoopProfile lp;
  lp.dims = 3;
  lp.extent = {408, 408, 408};
  lp.elem_bytes = 8;
  const auto wg = hw::choose_workgroup(
      hw::platform(PlatformId::A100),
      {Model::SYCLFlat, Toolchain::OpenSYCL}, lp);
  EXPECT_EQ(wg.local[0], 4u);
  EXPECT_EQ(wg.local[1], 8u);
  EXPECT_EQ(wg.local[2], 8u);
  // 8-wide fp64 = 64B: exactly one cache line per row segment.
  EXPECT_DOUBLE_EQ(wg.coalescing, 1.0);
}

TEST(CommModel, LatencyGrowsWithCoreCount) {
  EXPECT_GT(hw::comm_params(hw::platform(PlatformId::GenoaX)).latency_us,
            hw::comm_params(hw::platform(PlatformId::Altra)).latency_us);
}

TEST(Quirks, SpeedupQuirksExistForA100Mgcfd) {
  // §4.3: SYCL outperforms native CUDA on the A100 (factor < 1).
  const Variant osycl{Model::SYCLNDRange, Toolchain::OpenSYCL,
                      syclport::Strategy::Atomics};
  EXPECT_LT(hw::quirk_factor(PlatformId::A100, osycl, AppId::MGCFD,
                             hw::KernelClass::EdgeFlux),
            1.0);
}
