#pragma once
/// \file launch_log.hpp
/// Instrumentation of kernel launches. Every queue submission appends a
/// launch_record when logging is enabled; the OPS/OP2 DSLs and the
/// hardware model read these records to learn the actually-used
/// work-group shape (flat launches record local=nullopt - the shape is
/// then *chosen by the modeled compiler runtime*, which is exactly the
/// flat-vs-nd_range effect the paper studies).

#include <array>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace sycl {

struct launch_record {
  std::string kernel_name;
  int dims = 1;
  std::array<std::size_t, 3> global{1, 1, 1};
  std::optional<std::array<std::size_t, 3>> local;  ///< nullopt for flat
  bool used_barrier = false;
  bool reduction = false;
  double host_seconds = 0.0;  ///< host wall time of the functional run
  /// Executor counters of the launch (schedule used, chunk count, steal
  /// activity); lets bench reports separate scheduling overhead from
  /// kernel time. Zero chunks for single_task.
  syclport::rt::LaunchStats executor{};
};

/// Process-wide, thread-safe launch log.
class launch_log {
 public:
  static launch_log& instance();

  void set_enabled(bool on) {
    std::lock_guard lock(mu_);
    enabled_ = on;
  }
  [[nodiscard]] bool enabled() const {
    std::lock_guard lock(mu_);
    return enabled_;
  }

  void append(launch_record rec) {
    std::lock_guard lock(mu_);
    if (enabled_) records_.push_back(std::move(rec));
  }

  [[nodiscard]] std::vector<launch_record> snapshot() const {
    std::lock_guard lock(mu_);
    return records_;
  }

  void clear() {
    std::lock_guard lock(mu_);
    records_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return records_.size();
  }

 private:
  launch_log() = default;
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::vector<launch_record> records_;
};

}  // namespace sycl
