#include "apps/cloverleaf/cloverleaf2d.hpp"

#include <cmath>

#include "ops/fusion.hpp"

namespace syclport::apps {

namespace {
constexpr double kGamma = 1.4;
constexpr double kDt = 0.002;       // fixed stable step (dt kernel still runs)
constexpr double kRhoFloor = 1e-8;

using D = ops::Dat<double>;
using A = ops::ACC<double>;

/// Mirror one field into `depth` halo layers on all four sides - the
/// CloverLeaf update_halo pattern: one boundary par_loop per side. The
/// stencils declare the actual read offsets (one-sided, single
/// direction), so the dataflow capture sees tight footprints.
void update_halo(ops::FusedScope& fs, ops::Block& grid, D& f, int depth) {
  const long ny = static_cast<long>(grid.size(0));
  const long nx = static_cast<long>(grid.size(1));
  const ops::Stencil reach_x{depth, 0, 0, 2};
  const ops::Stencil reach_y{0, depth, 0, 2};

  ops::Range left{{0, -depth, 0}, {ny, 0, 1}};
  fs.loop({"halo_left", hw::KernelClass::Boundary, 0.0}, left,
          [](A a) { a(0, 0) = a(1, 0); },
          ops::arg(f, reach_x, ops::Acc::RW));
  ops::Range right{{0, nx, 0}, {ny, nx + depth, 1}};
  fs.loop({"halo_right", hw::KernelClass::Boundary, 0.0}, right,
          [](A a) { a(0, 0) = a(-1, 0); },
          ops::arg(f, reach_x, ops::Acc::RW));
  ops::Range bottom{{-depth, -depth, 0}, {0, nx + depth, 1}};
  fs.loop({"halo_bottom", hw::KernelClass::Boundary, 0.0}, bottom,
          [](A a) { a(0, 0) = a(0, 1); },
          ops::arg(f, reach_y, ops::Acc::RW));
  ops::Range top{{ny, -depth, 0}, {ny + depth, nx + depth, 1}};
  fs.loop({"halo_top", hw::KernelClass::Boundary, 0.0}, top,
          [](A a) { a(0, 0) = a(0, -1); },
          ops::arg(f, reach_y, ops::Acc::RW));
}

/// Copy another field pair's depth-1 halo strips onto dst - used to
/// give the momentum half-step velocities (xvel2/yvel2) the same
/// boundary values their in-place predecessors carried, without a
/// mirror loop that would cut the fused momentum chain (a mirror is an
/// in-place stencil read; a pointwise copy from the already-mirrored
/// field is not).
void copy_halo(ops::FusedScope& fs, ops::Block& grid, D& dx, D& dy, D& sx,
               D& sy) {
  const long ny = static_cast<long>(grid.size(0));
  const long nx = static_cast<long>(grid.size(1));
  const auto copy2 = [](A ox, A oy, A ix, A iy) {
    ox(0, 0) = ix(0, 0);
    oy(0, 0) = iy(0, 0);
  };
  const ops::Range strips[4] = {
      {{0, -1, 0}, {ny, 0, 1}},            // left
      {{0, nx, 0}, {ny, nx + 1, 1}},       // right
      {{-1, -1, 0}, {0, nx + 1, 1}},       // bottom (incl. corners)
      {{ny, -1, 0}, {ny + 1, nx + 1, 1}},  // top (incl. corners)
  };
  for (const ops::Range& r : strips)
    fs.loop({"halo_copy", hw::KernelClass::Boundary, 0.0}, r, copy2,
            ops::arg(dx, ops::S_PT, ops::Acc::W),
            ops::arg(dy, ops::S_PT, ops::Acc::W),
            ops::arg(sx, ops::S_PT, ops::Acc::R),
            ops::arg(sy, ops::S_PT, ops::Acc::R));
}

}  // namespace

RunSummary run_cloverleaf2d(const ops::Options& opt, ProblemSize ps) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "clover2d", 2, {ps.grid[0], ps.grid[1], 1});
  const long ny = static_cast<long>(ps.grid[0]);
  const long nx = static_cast<long>(ps.grid[1]);

  D density0(grid, "density0", 1, 2), density1(grid, "density1", 1, 2);
  D energy0(grid, "energy0", 1, 2), energy1(grid, "energy1", 1, 2);
  D pressure(grid, "pressure", 1, 2), viscosity(grid, "viscosity", 1, 2);
  D soundspeed(grid, "soundspeed", 1, 2);
  D xvel0(grid, "xvel0", 1, 2), xvel1(grid, "xvel1", 1, 2);
  D yvel0(grid, "yvel0", 1, 2), yvel1(grid, "yvel1", 1, 2);
  // Half-advected velocities: the x momentum pass writes these instead
  // of updating xvel1/yvel1 in place, so the y pass reads a distinct
  // producer and the whole momentum chain stays WAR-free (fusable).
  D xvel2(grid, "xvel2", 1, 2), yvel2(grid, "yvel2", 1, 2);
  D vol_flux_x(grid, "vol_flux_x", 1, 2), vol_flux_y(grid, "vol_flux_y", 1, 2);
  D mass_flux(grid, "mass_flux", 1, 2), ener_flux(grid, "ener_flux", 1, 2);
  // Separate per-direction momentum fluxes (not one reused dat): a
  // reused buffer is a WAW edge with unequal ghost expansions, which
  // the dataflow partitioner must split.
  D mom_flux_x(grid, "mom_flux_x", 2, 2), mom_flux_y(grid, "mom_flux_y", 2, 2);

  if (ctx.executing()) {
    // Two-state energy bomb in the corner, CloverLeaf's standard setup.
    for (long j = -2; j < ny + 2; ++j)
      for (long i = -2; i < nx + 2; ++i) {
        const bool hot = j < ny / 3 && i < nx / 3;
        density0.at(j, i) = hot ? 1.0 : 0.2;
        energy0.at(j, i) = hot ? 2.5 : 1.0;
      }
  }

  const ops::Range interior = ops::Range::all(grid);
  const ops::Stencil s5{1, 1, 0, 5};
  const ops::Stencil face{1, 1, 0, 4};

  RunSummary rs;
  double dt_min = 1e30;  // outlives each step's FusedScope (reduction target)
  for (int step = 0; step < ps.iters; ++step) {
    ops::FusedScope fs(ctx, grid);
    // --- EoS ---------------------------------------------------------------
    fs.loop({"ideal_gas", hw::KernelClass::Interior, 9.0}, interior,
            [](A d, A e, A p, A ss) {
              const double rho = std::max(kRhoFloor, d(0, 0));
              p(0, 0) = (kGamma - 1.0) * rho * e(0, 0);
              ss(0, 0) = std::sqrt(kGamma * p(0, 0) / rho);
            },
            ops::arg(density0, ops::S_PT, ops::Acc::R),
            ops::arg(energy0, ops::S_PT, ops::Acc::R),
            ops::arg(pressure, ops::S_PT, ops::Acc::W),
            ops::arg(soundspeed, ops::S_PT, ops::Acc::W));
    update_halo(fs, grid, pressure, 1);

    // --- artificial viscosity -----------------------------------------------
    fs.loop({"viscosity", hw::KernelClass::Interior, 22.0}, interior,
            [](A visc, A d, A xv, A yv) {
              const double div =
                  (xv(1, 0) - xv(0, 0)) + (yv(0, 1) - yv(0, 0));
              visc(0, 0) =
                  div < 0.0 ? 2.0 * d(0, 0) * div * div : 0.0;
            },
            ops::arg(viscosity, ops::S_PT, ops::Acc::W),
            ops::arg(density0, ops::S_PT, ops::Acc::R),
            ops::arg(xvel0, face, ops::Acc::R),
            ops::arg(yvel0, face, ops::Acc::R));
    update_halo(fs, grid, viscosity, 1);

    // --- dt control (reduction; fixed dt actually used) ---------------------
    dt_min = 1e30;
    fs.loop({"calc_dt", hw::KernelClass::Reduction, 14.0}, interior,
            [](A ss, A xv, A yv, ops::Reducer<double> r) {
              const double speed = ss(0, 0) + std::fabs(xv(0, 0)) +
                                   std::fabs(yv(0, 0));
              r.combine(1.0 / std::max(1e-12, speed));
            },
            ops::arg(soundspeed, ops::S_PT, ops::Acc::R),
            ops::arg(xvel0, ops::S_PT, ops::Acc::R),
            ops::arg(yvel0, ops::S_PT, ops::Acc::R),
            ops::reduce(dt_min, ops::RedOp::Min));

    // --- PdV: compress/expand energy and density -----------------------------
    fs.loop({"pdv", hw::KernelClass::Interior, 26.0}, interior,
            [](A d1k, A e1k, A d0, A e0, A p, A v, A xv, A yv) {
              const double div =
                  (xv(1, 0) - xv(0, 0)) + (yv(0, 1) - yv(0, 0));
              const double rho = std::max(kRhoFloor, d0(0, 0));
              d1k(0, 0) = rho / (1.0 + kDt * div);
              e1k(0, 0) = e0(0, 0) -
                          kDt * (p(0, 0) + v(0, 0)) * div / rho;
            },
            ops::arg(density1, ops::S_PT, ops::Acc::W),
            ops::arg(energy1, ops::S_PT, ops::Acc::W),
            ops::arg(density0, ops::S_PT, ops::Acc::R),
            ops::arg(energy0, ops::S_PT, ops::Acc::R),
            ops::arg(pressure, ops::S_PT, ops::Acc::R),
            ops::arg(viscosity, ops::S_PT, ops::Acc::R),
            ops::arg(xvel0, face, ops::Acc::R),
            ops::arg(yvel0, face, ops::Acc::R));

    // --- acceleration ---------------------------------------------------------
    fs.loop({"accelerate", hw::KernelClass::Interior, 20.0}, interior,
            [](A xv1, A yv1, A xv0, A yv0, A d, A p, A v) {
              const double rho = std::max(kRhoFloor, d(0, 0));
              xv1(0, 0) = xv0(0, 0) -
                          kDt * (p(0, 0) - p(-1, 0) + v(0, 0) -
                                 v(-1, 0)) /
                              rho;
              yv1(0, 0) = yv0(0, 0) -
                          kDt * (p(0, 0) - p(0, -1) + v(0, 0) -
                                 v(0, -1)) /
                              rho;
            },
            ops::arg(xvel1, ops::S_PT, ops::Acc::W),
            ops::arg(yvel1, ops::S_PT, ops::Acc::W),
            ops::arg(xvel0, ops::S_PT, ops::Acc::R),
            ops::arg(yvel0, ops::S_PT, ops::Acc::R),
            ops::arg(density0, ops::S_PT, ops::Acc::R),
            ops::arg(pressure, s5, ops::Acc::R),
            ops::arg(viscosity, s5, ops::Acc::R));
    update_halo(fs, grid, xvel1, 1);
    update_halo(fs, grid, yvel1, 1);

    // --- face volume fluxes -----------------------------------------------------
    fs.loop({"flux_calc", hw::KernelClass::Interior, 8.0}, interior,
            [](A fx, A fy, A xv0, A xv1, A yv0, A yv1) {
              fx(0, 0) = 0.25 * kDt * (xv0(0, 0) + xv1(0, 0));
              fy(0, 0) = 0.25 * kDt * (yv0(0, 0) + yv1(0, 0));
            },
            ops::arg(vol_flux_x, ops::S_PT, ops::Acc::W),
            ops::arg(vol_flux_y, ops::S_PT, ops::Acc::W),
            ops::arg(xvel0, ops::S_PT, ops::Acc::R),
            ops::arg(xvel1, ops::S_PT, ops::Acc::R),
            ops::arg(yvel0, ops::S_PT, ops::Acc::R),
            ops::arg(yvel1, ops::S_PT, ops::Acc::R));
    update_halo(fs, grid, vol_flux_x, 1);
    update_halo(fs, grid, vol_flux_y, 1);

    // --- donor-cell advection, x then y ------------------------------------------
    auto advect_cells = [&](D& vol_flux, int dx, int dy, const char* fname,
                            const char* uname) {
      fs.loop({fname, hw::KernelClass::Interior, 14.0}, interior,
              [dx, dy](A mf, A ef, A vf, A d, A e) {
                const double f = vf(0, 0);
                const int ux = f > 0.0 ? -dx : 0;
                const int uy = f > 0.0 ? -dy : 0;
                mf(0, 0) = f * d(ux, uy);
                ef(0, 0) = f * d(ux, uy) * e(ux, uy);
              },
              ops::arg(mass_flux, ops::S_PT, ops::Acc::W),
              ops::arg(ener_flux, ops::S_PT, ops::Acc::W),
              ops::arg(vol_flux, ops::S_PT, ops::Acc::R),
              ops::arg(density1, s5, ops::Acc::R),
              ops::arg(energy1, s5, ops::Acc::R));
      update_halo(fs, grid, mass_flux, 1);
      update_halo(fs, grid, ener_flux, 1);
      fs.loop({uname, hw::KernelClass::Interior, 16.0}, interior,
              [dx, dy](A d, A e, A mf, A ef) {
                const double dm = mf(0, 0) - mf(dx, dy);
                const double de = ef(0, 0) - ef(dx, dy);
                const double rho_new =
                    std::max(kRhoFloor, d(0, 0) + dm);
                e(0, 0) = (d(0, 0) * e(0, 0) + de) / rho_new;
                d(0, 0) = rho_new;
              },
              ops::arg(density1, ops::S_PT, ops::Acc::RW),
              ops::arg(energy1, ops::S_PT, ops::Acc::RW),
              ops::arg(mass_flux, s5, ops::Acc::R),
              ops::arg(ener_flux, s5, ops::Acc::R));
    };
    advect_cells(vol_flux_x, 1, 0, "advec_cell_flux_x", "advec_cell_upd_x");
    advect_cells(vol_flux_y, 0, 1, "advec_cell_flux_y", "advec_cell_upd_y");

    // --- momentum advection, x then y ------------------------------------------
    // Each pass reads one velocity pair and writes the next
    // (xvel1 -> xvel2 -> xvel0), with its own flux dat: no dat is both
    // read and written across the pass boundary, so the cell update,
    // both momentum passes and the field reset all fuse into one
    // overlap-tiled sweep.
    auto mom_flux_kernel = [](int dx, int dy) {
      return [dx, dy](A mf, A vf, A xv, A yv) {
        const double f = vf(0, 0);
        const int ux = f > 0.0 ? -dx : 0;
        const int uy = f > 0.0 ? -dy : 0;
        mf.comp(0, 0, 0) = f * xv(ux, uy);
        mf.comp(1, 0, 0) = f * yv(ux, uy);
      };
    };
    auto mom_upd_kernel = [](int dx, int dy) {
      return [dx, dy](A xo, A yo, A xi, A yi, A mf) {
        xo(0, 0) = xi(0, 0) + (mf.comp(0, 0, 0) - mf.comp(0, dx, dy));
        yo(0, 0) = yi(0, 0) + (mf.comp(1, 0, 0) - mf.comp(1, dx, dy));
      };
    };
    fs.loop({"advec_mom_flux_x", hw::KernelClass::Interior, 12.0}, interior,
            mom_flux_kernel(1, 0),
            ops::arg(mom_flux_x, ops::S_PT, ops::Acc::W),
            ops::arg(vol_flux_x, ops::S_PT, ops::Acc::R),
            ops::arg(xvel1, s5, ops::Acc::R),
            ops::arg(yvel1, s5, ops::Acc::R));
    fs.loop({"advec_mom_upd_x", hw::KernelClass::Interior, 10.0}, interior,
            mom_upd_kernel(1, 0),
            ops::arg(xvel2, ops::S_PT, ops::Acc::W),
            ops::arg(yvel2, ops::S_PT, ops::Acc::W),
            ops::arg(xvel1, ops::S_PT, ops::Acc::R),
            ops::arg(yvel1, ops::S_PT, ops::Acc::R),
            ops::arg(mom_flux_x, s5, ops::Acc::R));
    // The y pass reads xvel2/yvel2 through a radius-1 stencil; give
    // their halo strips the same (stale, pre-x-pass mirror) values the
    // in-place scheme exposed there.
    copy_halo(fs, grid, xvel2, yvel2, xvel1, yvel1);
    fs.loop({"advec_mom_flux_y", hw::KernelClass::Interior, 12.0}, interior,
            mom_flux_kernel(0, 1),
            ops::arg(mom_flux_y, ops::S_PT, ops::Acc::W),
            ops::arg(vol_flux_y, ops::S_PT, ops::Acc::R),
            ops::arg(xvel2, s5, ops::Acc::R),
            ops::arg(yvel2, s5, ops::Acc::R));
    fs.loop({"advec_mom_upd_y", hw::KernelClass::Interior, 10.0}, interior,
            mom_upd_kernel(0, 1),
            ops::arg(xvel0, ops::S_PT, ops::Acc::W),
            ops::arg(yvel0, ops::S_PT, ops::Acc::W),
            ops::arg(xvel2, ops::S_PT, ops::Acc::R),
            ops::arg(yvel2, ops::S_PT, ops::Acc::R),
            ops::arg(mom_flux_y, s5, ops::Acc::R));

    // --- reset for the next step ------------------------------------------------
    // Velocities already landed in xvel0/yvel0 above; only the cell
    // fields need copying back.
    fs.loop({"reset_field", hw::KernelClass::Interior, 0.0}, interior,
            [](A d0, A e0, A d1k, A e1k) {
              d0(0, 0) = d1k(0, 0);
              e0(0, 0) = e1k(0, 0);
            },
            ops::arg(density0, ops::S_PT, ops::Acc::W),
            ops::arg(energy0, ops::S_PT, ops::Acc::W),
            ops::arg(density1, ops::S_PT, ops::Acc::R),
            ops::arg(energy1, ops::S_PT, ops::Acc::R));
    update_halo(fs, grid, density0, 2);
    update_halo(fs, grid, energy0, 2);
    update_halo(fs, grid, xvel0, 1);
    update_halo(fs, grid, yvel0, 1);
  }

  // --- field summary (mass/energy reductions, once per run) -----------------
  double mass = 0.0, ie = 0.0;
  ops::par_loop(ctx, {"field_summary", hw::KernelClass::Reduction, 6.0}, grid,
                ops::Range::all(grid),
                [](A d, A e, ops::Reducer<double> m, ops::Reducer<double> en) {
                  m += d(0, 0);
                  en += d(0, 0) * e(0, 0);
                },
                ops::arg(density0, ops::S_PT, ops::Acc::R),
                ops::arg(energy0, ops::S_PT, ops::Acc::R),
                ops::reduce(mass, ops::RedOp::Sum),
                ops::reduce(ie, ops::RedOp::Sum));

  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing()) rs.checksum = mass + ie;
  return rs;
}

}  // namespace syclport::apps
