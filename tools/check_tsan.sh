#!/usr/bin/env bash
# Build the concurrency-sensitive test binaries with ThreadSanitizer
# and run the scheduler / queue / halo-overlap test subset under it.
#
# The subset is defined by the `tsan` test preset in CMakePresets.json:
# it covers the out-of-order queue scheduler, the thread pool, the
# thread-safe launch log, minimpi halo exchange and the distributed
# overlap layers, and excludes fiber-based nd_range tests (TSan cannot
# track swapcontext; those run under the `asan` preset instead - see
# docs/executor.md).
#
# Usage: tools/check_tsan.sh  (from the repository root)

set -euo pipefail
cd "$(dirname "$0")/.."

cmake --workflow --preset tsan
echo "TSan concurrency suite passed."
