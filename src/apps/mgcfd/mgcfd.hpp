#pragma once
/// \file mgcfd.hpp
/// MG-CFD proxy (paper §3, item 5): unstructured-mesh finite-volume
/// Euler solver with a multigrid proxy, modelled on the Rolls-Royce
/// Hydra mini-app of Owenson et al. Per V-cycle iteration and level:
/// a step-factor kernel (direct), an edge-based Rusanov flux kernel
/// (indirect gather + INC scatter - the loop whose race resolution the
/// strategies compete on), a time-step update, and restrict/prolong
/// transfers between levels; plus a residual-RMS reduction.

#include "apps/common.hpp"
#include "apps/mgcfd/mesh.hpp"
#include "op2/op2.hpp"

namespace syclport::apps {

struct MgcfdConfig {
  std::size_t ni = 48, nj = 40, nk = 32;  ///< fine-level node grid
  int levels = 3;
  int iters = 25;
};

/// The paper's case: Rotor37, 8M vertices, 25 iterations (model-only
/// scale; see DESIGN.md §2 on the mesh substitution).
[[nodiscard]] inline MgcfdConfig mgcfd_paper() {
  return {250, 200, 160, 3, 25};
}

/// Benchmark-scale mesh: executable on one core in seconds; large
/// enough (~143k nodes, ~6 MB indirect footprint) that the measured
/// gather reuse profile covers every platform's rescaled cache point.
[[nodiscard]] inline MgcfdConfig mgcfd_bench() { return {64, 56, 40, 3, 25}; }

/// Reduced configuration for functional validation runs.
[[nodiscard]] inline MgcfdConfig mgcfd_small() { return {10, 8, 6, 3, 2}; }

/// Run MG-CFD on a prebuilt mesh; checksum is total mass on the fine
/// level (conserved by the flux kernel up to rounding).
[[nodiscard]] RunSummary run_mgcfd(const op2::Options& opt,
                                   mgcfd::MultigridMesh& mesh, int iters);

/// Convenience: build the mesh for `cfg` and run.
[[nodiscard]] RunSummary run_mgcfd(const op2::Options& opt,
                                   const MgcfdConfig& cfg);

}  // namespace syclport::apps
