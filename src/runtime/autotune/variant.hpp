#pragma once
/// \file autotune/variant.hpp
/// Parametrized kernel variants: the register-tile / vector-width /
/// unroll menu the kRegTile/kVecWidth/kUnroll axes race, and the
/// template runner that executes one of them.
///
/// The paper's BabelStream/CloverLeaf gaps vs native show that
/// launch-level knobs (schedule, grain, work-group shape) leave 10-30%
/// on the table: CPUs want vectorized, register-blocked inner loops,
/// GPUs want ILP from unrolling. Lawson et al. recover this portably
/// with highly parametrized SYCL kernels - template-instantiated
/// variants selected per platform. This header is that layer for the
/// miniSYCL/OPS/OP2 hot paths:
///
///   - VariantParams names one point of the (reg_tile, vec_width,
///     unroll) space; the canonical executable menu (kVariantMenu) is
///     the closed set of template instantiations every dispatch site
///     compiles, so the search can only hand out variants that exist.
///   - run_span<RT, VW, U> executes a linear index span with a
///     constant-trip nest: RT register-tile rows x U unrolled steps x a
///     VW-wide innermost loop (the code shape sycl::vec<double, VW>
///     lowers to on CPUs for loads/stores and element-wise arithmetic,
///     expressed as a constant-trip loop so the compiler vectorizes it
///     while the *program order per element stays ascending*).
///   - run_span_variant dispatches a runtime VariantParams onto the
///     menu instantiation.
///
/// Bit-exactness contract: every variant visits the span's indices in
/// strictly ascending order, so per-chunk floating-point accumulation
/// order is identical to the unparametrized reference loop - reductions
/// included. Variants only change how the iterations are *structured*
/// (tile/unroll/vector shape visible to the optimizer), never the
/// order they are observed in. The kCacheBlock axis, which does
/// reorder traversal, is therefore a separate axis that only
/// independent-point (non-reduction) sites declare.

#include <array>
#include <cstddef>
#include <string>

#include "runtime/thread_pool.hpp"

namespace syclport::rt::autotune {

/// One kernel-variant shape: how many consecutive linear indices one
/// "macro iteration" covers and how they are structured. {1,1,1} is the
/// unparametrized reference.
struct VariantParams {
  int reg_tile = 1;   ///< register-tile rows per macro iteration
  int vec_width = 1;  ///< innermost constant-trip width (sycl::vec hint)
  int unroll = 1;     ///< unrolled steps between the two

  [[nodiscard]] constexpr int span() const noexcept {
    return reg_tile * vec_width * unroll;
  }
  [[nodiscard]] constexpr bool operator==(const VariantParams&) const =
      default;
};

/// The closed set of compiled instantiations. Dispatch sites
/// instantiate exactly these; candidate generation intersects the
/// priors cross-product with this menu, so an illegal or unknown combo
/// can never be handed out. Ordered reference-first, then single-axis
/// escalations, then mixed shapes.
inline constexpr std::array<VariantParams, 15> kVariantMenu{{
    {1, 1, 1},
    {2, 1, 1},
    {4, 1, 1},
    {1, 2, 1},
    {1, 4, 1},
    {1, 8, 1},
    {2, 2, 1},
    {2, 4, 1},
    {4, 2, 1},
    {4, 4, 1},
    {1, 1, 2},
    {1, 1, 4},
    {2, 1, 2},
    {1, 2, 2},
    {1, 4, 2},
}};

/// Menu index of `vp`, or -1 when it is not an executable variant.
[[nodiscard]] constexpr int variant_menu_index(
    const VariantParams& vp) noexcept {
  for (std::size_t i = 0; i < kVariantMenu.size(); ++i)
    if (kVariantMenu[i] == vp) return static_cast<int>(i);
  return -1;
}

/// Compact id recorded per launch (launch_log) and in the bench CSVs:
/// "rt2v4u1", plus "cb<n>" when a cache block is active. The reference
/// {1,1,1} with no blocking renders as "ref".
[[nodiscard]] inline std::string variant_id(const VariantParams& vp,
                                            std::size_t cache_block = 0) {
  if (vp == VariantParams{} && cache_block == 0) return "ref";
  std::string s = "rt" + std::to_string(vp.reg_tile) + "v" +
                  std::to_string(vp.vec_width) + "u" +
                  std::to_string(vp.unroll);
  if (cache_block > 0) s += "cb" + std::to_string(cache_block);
  return s;
}

namespace detail {

#if defined(__clang__)
#define SYCLPORT_VARIANT_UNROLL _Pragma("unroll")
#elif defined(__GNUC__)
#define SYCLPORT_VARIANT_UNROLL _Pragma("GCC unroll 8")
#else
#define SYCLPORT_VARIANT_UNROLL
#endif

/// Execute f(lin) for lin in [b, e) as RT x U macro steps over a
/// VW-wide constant-trip innermost loop, plus a scalar tail. Indices
/// are visited in strictly ascending order (see the header contract).
template <int RT, int VW, int U, typename F>
inline void run_span(std::size_t b, std::size_t e, F&& f) {
  constexpr std::size_t kStep = static_cast<std::size_t>(RT * VW * U);
  std::size_t lin = b;
  if constexpr (kStep > 1) {
    for (; lin + kStep <= e; lin += kStep) {
      SYCLPORT_VARIANT_UNROLL
      for (int r = 0; r < RT; ++r) {
        SYCLPORT_VARIANT_UNROLL
        for (int u = 0; u < U; ++u) {
          const std::size_t base =
              lin + static_cast<std::size_t>((r * U + u) * VW);
          SYCLPORT_VARIANT_UNROLL
          for (int v = 0; v < VW; ++v)
            f(base + static_cast<std::size_t>(v));
        }
      }
    }
  }
  for (; lin < e; ++lin) f(lin);
}

}  // namespace detail

/// Dispatch a runtime variant onto its menu instantiation. Unknown
/// shapes (a tampered cache entry that survived parsing, a foreign
/// donor) fall back to the reference loop - never UB, never a skipped
/// index.
template <typename F>
inline void run_span_variant(const VariantParams& vp, std::size_t b,
                             std::size_t e, F&& f) {
  switch (variant_menu_index(vp)) {
    case 1: detail::run_span<2, 1, 1>(b, e, f); return;
    case 2: detail::run_span<4, 1, 1>(b, e, f); return;
    case 3: detail::run_span<1, 2, 1>(b, e, f); return;
    case 4: detail::run_span<1, 4, 1>(b, e, f); return;
    case 5: detail::run_span<1, 8, 1>(b, e, f); return;
    case 6: detail::run_span<2, 2, 1>(b, e, f); return;
    case 7: detail::run_span<2, 4, 1>(b, e, f); return;
    case 8: detail::run_span<4, 2, 1>(b, e, f); return;
    case 9: detail::run_span<4, 4, 1>(b, e, f); return;
    case 10: detail::run_span<1, 1, 2>(b, e, f); return;
    case 11: detail::run_span<1, 1, 4>(b, e, f); return;
    case 12: detail::run_span<2, 1, 2>(b, e, f); return;
    case 13: detail::run_span<1, 2, 2>(b, e, f); return;
    case 14: detail::run_span<1, 4, 2>(b, e, f); return;
    default: detail::run_span<1, 1, 1>(b, e, f); return;
  }
}

/// Cache-blocked traversal of a rows x fast iteration space through the
/// thread pool (the kCacheBlock axis): parallelize over rows, and
/// inside each row chunk walk the fast dimension in blocks of `cb`
/// items so each block of every streamed array is still cache-resident
/// when the next row revisits it. Each row segment runs through the
/// variant runner. Visits every (row, j) exactly once but *reorders*
/// the fast dimension across rows - callers only take this path for
/// independent-point (non-reduction) kernels.
///
/// The active grain was tuned in items of the flat space; the row loop
/// rescales it so a chunk still covers about the same work.
template <typename F>
inline void blocked_parallel_for(std::size_t rows, std::size_t fast,
                                 std::size_t cb, const VariantParams& vp,
                                 F&& f /* f(std::size_t lin) */) {
  const std::size_t item_grain = launch_params().grain;
  const std::size_t row_grain =
      std::max<std::size_t>(1, item_grain / std::max<std::size_t>(1, fast));
  ScopedLaunchParams scope(std::nullopt, row_grain);
  ThreadPool::global().parallel_for(
      rows, [&](std::size_t rb, std::size_t re) {
        for (std::size_t jb = 0; jb < fast; jb += cb) {
          const std::size_t je = std::min(fast, jb + cb);
          for (std::size_t i = rb; i < re; ++i)
            run_span_variant(vp, i * fast + jb, i * fast + je, f);
        }
      });
}

}  // namespace syclport::rt::autotune
