file(REMOVE_RECURSE
  "CMakeFiles/fig10_pp_structured.dir/fig10_pp_structured.cpp.o"
  "CMakeFiles/fig10_pp_structured.dir/fig10_pp_structured.cpp.o.d"
  "fig10_pp_structured"
  "fig10_pp_structured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pp_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
