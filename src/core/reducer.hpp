#pragma once
/// \file reducer.hpp
/// Global-reduction combiner shared by the OPS and OP2 DSLs. Atomic so
/// every backend (threads, SYCL flat/nd, MPI+threads) can combine into
/// one target; the *cost* differences between programming models are a
/// hardware-model concern (see hwmodel/exec_profile.cpp).

#include <atomic>
#include <cstdint>

namespace syclport {

enum class RedOp : std::uint8_t { Sum, Min, Max };

template <typename T>
class Reducer {
 public:
  Reducer(T* target, RedOp op) : t_(target), op_(op) {}

  void combine(T v) const {
    std::atomic_ref<T> a(*t_);
    switch (op_) {
      case RedOp::Sum: {
        a.fetch_add(v, std::memory_order_relaxed);
        break;
      }
      case RedOp::Min: {
        T cur = a.load(std::memory_order_relaxed);
        while (v < cur && !a.compare_exchange_weak(cur, v)) {
        }
        break;
      }
      case RedOp::Max: {
        T cur = a.load(std::memory_order_relaxed);
        while (cur < v && !a.compare_exchange_weak(cur, v)) {
        }
        break;
      }
    }
  }
  void operator+=(T v) const { combine(v); }

 private:
  T* t_;
  RedOp op_;
};

}  // namespace syclport
