#pragma once
/// \file op2/checkpoint.hpp
/// Checkpoint/restart for OP2 dats: the unstructured-mesh counterpart
/// of ops/checkpoint.hpp. Snapshot the raw per-element storage of a
/// set of dats into one CRC-tagged file and roll back to it later;
/// rollback-and-recompute reproduces the uncheckpointed answer
/// bit-exactly for deterministic kernels. Regions are keyed by dat
/// name; format and validation live in rt::fault::Snapshot.

#include <string>

#include "op2/context.hpp"
#include "op2/dat.hpp"
#include "runtime/fault/checkpoint.hpp"

namespace syclport::op2 {

/// Snapshot `dats` to `path` (atomic write; see Snapshot::save).
template <typename... Ts>
void checkpoint(Context& ctx, const std::string& path, Dat<Ts>&... dats) {
  ctx.queue.wait();
  rt::fault::Snapshot snap;
  (snap.add(dats.name(), dats.storage(), dats.storage_bytes()), ...);
  snap.save(path);
}

/// Roll `dats` back to the state saved at `path`. All-or-nothing:
/// throws rt::fault::checkpoint_error leaving every dat untouched when
/// the file is damaged or does not match the registered dats.
template <typename... Ts>
void restore(Context& ctx, const std::string& path, Dat<Ts>&... dats) {
  ctx.queue.wait();
  rt::fault::Snapshot snap;
  (snap.add(dats.name(), dats.storage(), dats.storage_bytes()), ...);
  snap.restore(path);
}

}  // namespace syclport::op2
