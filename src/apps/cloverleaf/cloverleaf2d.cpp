#include "apps/cloverleaf/cloverleaf2d.hpp"

#include <cmath>

namespace syclport::apps {

namespace {
constexpr double kGamma = 1.4;
constexpr double kDt = 0.002;       // fixed stable step (dt kernel still runs)
constexpr double kRhoFloor = 1e-8;

using D = ops::Dat<double>;
using A = ops::ACC<double>;

/// Mirror one field into `depth` halo layers on all four sides - the
/// CloverLeaf update_halo pattern: one boundary par_loop per side.
void update_halo(ops::Context& ctx, ops::Block& grid, D& f, int depth) {
  const long ny = static_cast<long>(grid.size(0));
  const long nx = static_cast<long>(grid.size(1));
  const ops::Stencil reach{2 * depth, 2 * depth, 0, 2};

  ops::Range left{{0, -depth, 0}, {ny, 0, 1}};
  ops::par_loop(ctx, {"halo_left", hw::KernelClass::Boundary, 0.0}, grid, left,
                [](A a) { a(0, 0) = a(1, 0); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range right{{0, nx, 0}, {ny, nx + depth, 1}};
  ops::par_loop(ctx, {"halo_right", hw::KernelClass::Boundary, 0.0}, grid,
                right, [](A a) { a(0, 0) = a(-1, 0); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range bottom{{-depth, -depth, 0}, {0, nx + depth, 1}};
  ops::par_loop(ctx, {"halo_bottom", hw::KernelClass::Boundary, 0.0}, grid,
                bottom, [](A a) { a(0, 0) = a(0, 1); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range top{{ny, -depth, 0}, {ny + depth, nx + depth, 1}};
  ops::par_loop(ctx, {"halo_top", hw::KernelClass::Boundary, 0.0}, grid, top,
                [](A a) { a(0, 0) = a(0, -1); },
                ops::arg(f, reach, ops::Acc::RW));
}

}  // namespace

RunSummary run_cloverleaf2d(const ops::Options& opt, ProblemSize ps) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "clover2d", 2, {ps.grid[0], ps.grid[1], 1});
  const long ny = static_cast<long>(ps.grid[0]);
  const long nx = static_cast<long>(ps.grid[1]);

  D density0(grid, "density0", 1, 2), density1(grid, "density1", 1, 2);
  D energy0(grid, "energy0", 1, 2), energy1(grid, "energy1", 1, 2);
  D pressure(grid, "pressure", 1, 2), viscosity(grid, "viscosity", 1, 2);
  D soundspeed(grid, "soundspeed", 1, 2);
  D xvel0(grid, "xvel0", 1, 2), xvel1(grid, "xvel1", 1, 2);
  D yvel0(grid, "yvel0", 1, 2), yvel1(grid, "yvel1", 1, 2);
  D vol_flux_x(grid, "vol_flux_x", 1, 2), vol_flux_y(grid, "vol_flux_y", 1, 2);
  D mass_flux(grid, "mass_flux", 1, 2), ener_flux(grid, "ener_flux", 1, 2);
  D mom_flux(grid, "mom_flux", 2, 2);

  if (ctx.executing()) {
    // Two-state energy bomb in the corner, CloverLeaf's standard setup.
    for (long j = -2; j < ny + 2; ++j)
      for (long i = -2; i < nx + 2; ++i) {
        const bool hot = j < ny / 3 && i < nx / 3;
        density0.at(j, i) = hot ? 1.0 : 0.2;
        energy0.at(j, i) = hot ? 2.5 : 1.0;
      }
  }

  const ops::Range interior = ops::Range::all(grid);
  const ops::Stencil s5{1, 1, 0, 5};
  const ops::Stencil face{1, 1, 0, 4};

  RunSummary rs;
  for (int step = 0; step < ps.iters; ++step) {
    // --- EoS ---------------------------------------------------------------
    ops::par_loop(ctx, {"ideal_gas", hw::KernelClass::Interior, 9.0}, grid,
                  interior,
                  [](A d, A e, A p, A ss) {
                    const double rho = std::max(kRhoFloor, d(0, 0));
                    p(0, 0) = (kGamma - 1.0) * rho * e(0, 0);
                    ss(0, 0) = std::sqrt(kGamma * p(0, 0) / rho);
                  },
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(energy0, ops::S_PT, ops::Acc::R),
                  ops::arg(pressure, ops::S_PT, ops::Acc::W),
                  ops::arg(soundspeed, ops::S_PT, ops::Acc::W));
    update_halo(ctx, grid, pressure, 1);

    // --- artificial viscosity -----------------------------------------------
    ops::par_loop(ctx, {"viscosity", hw::KernelClass::Interior, 22.0}, grid,
                  interior,
                  [](A visc, A d, A xv, A yv) {
                    const double div =
                        (xv(1, 0) - xv(0, 0)) + (yv(0, 1) - yv(0, 0));
                    visc(0, 0) =
                        div < 0.0 ? 2.0 * d(0, 0) * div * div : 0.0;
                  },
                  ops::arg(viscosity, ops::S_PT, ops::Acc::W),
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(xvel0, face, ops::Acc::R),
                  ops::arg(yvel0, face, ops::Acc::R));
    update_halo(ctx, grid, viscosity, 1);

    // --- dt control (reduction; fixed dt actually used) ---------------------
    double dt_min = 1e30;
    ops::par_loop(ctx, {"calc_dt", hw::KernelClass::Reduction, 14.0}, grid,
                  interior,
                  [](A ss, A xv, A yv, ops::Reducer<double> r) {
                    const double speed = ss(0, 0) + std::fabs(xv(0, 0)) +
                                         std::fabs(yv(0, 0));
                    r.combine(1.0 / std::max(1e-12, speed));
                  },
                  ops::arg(soundspeed, ops::S_PT, ops::Acc::R),
                  ops::arg(xvel0, ops::S_PT, ops::Acc::R),
                  ops::arg(yvel0, ops::S_PT, ops::Acc::R),
                  ops::reduce(dt_min, ops::RedOp::Min));

    // --- PdV: compress/expand energy and density -----------------------------
    ops::par_loop(ctx, {"pdv", hw::KernelClass::Interior, 26.0}, grid,
                  interior,
                  [](A d1k, A e1k, A d0, A e0, A p, A v, A xv, A yv) {
                    const double div =
                        (xv(1, 0) - xv(0, 0)) + (yv(0, 1) - yv(0, 0));
                    const double rho = std::max(kRhoFloor, d0(0, 0));
                    d1k(0, 0) = rho / (1.0 + kDt * div);
                    e1k(0, 0) = e0(0, 0) -
                                kDt * (p(0, 0) + v(0, 0)) * div / rho;
                  },
                  ops::arg(density1, ops::S_PT, ops::Acc::W),
                  ops::arg(energy1, ops::S_PT, ops::Acc::W),
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(energy0, ops::S_PT, ops::Acc::R),
                  ops::arg(pressure, ops::S_PT, ops::Acc::R),
                  ops::arg(viscosity, ops::S_PT, ops::Acc::R),
                  ops::arg(xvel0, face, ops::Acc::R),
                  ops::arg(yvel0, face, ops::Acc::R));

    // --- acceleration ---------------------------------------------------------
    ops::par_loop(ctx, {"accelerate", hw::KernelClass::Interior, 20.0}, grid,
                  interior,
                  [](A xv1, A yv1, A xv0, A yv0, A d, A p, A v) {
                    const double rho = std::max(kRhoFloor, d(0, 0));
                    xv1(0, 0) = xv0(0, 0) -
                                kDt * (p(0, 0) - p(-1, 0) + v(0, 0) -
                                       v(-1, 0)) /
                                    rho;
                    yv1(0, 0) = yv0(0, 0) -
                                kDt * (p(0, 0) - p(0, -1) + v(0, 0) -
                                       v(0, -1)) /
                                    rho;
                  },
                  ops::arg(xvel1, ops::S_PT, ops::Acc::W),
                  ops::arg(yvel1, ops::S_PT, ops::Acc::W),
                  ops::arg(xvel0, ops::S_PT, ops::Acc::R),
                  ops::arg(yvel0, ops::S_PT, ops::Acc::R),
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(pressure, s5, ops::Acc::R),
                  ops::arg(viscosity, s5, ops::Acc::R));
    update_halo(ctx, grid, xvel1, 1);
    update_halo(ctx, grid, yvel1, 1);

    // --- face volume fluxes -----------------------------------------------------
    ops::par_loop(ctx, {"flux_calc", hw::KernelClass::Interior, 8.0}, grid,
                  interior,
                  [](A fx, A fy, A xv0, A xv1, A yv0, A yv1) {
                    fx(0, 0) = 0.25 * kDt * (xv0(0, 0) + xv1(0, 0));
                    fy(0, 0) = 0.25 * kDt * (yv0(0, 0) + yv1(0, 0));
                  },
                  ops::arg(vol_flux_x, ops::S_PT, ops::Acc::W),
                  ops::arg(vol_flux_y, ops::S_PT, ops::Acc::W),
                  ops::arg(xvel0, ops::S_PT, ops::Acc::R),
                  ops::arg(xvel1, ops::S_PT, ops::Acc::R),
                  ops::arg(yvel0, ops::S_PT, ops::Acc::R),
                  ops::arg(yvel1, ops::S_PT, ops::Acc::R));
    update_halo(ctx, grid, vol_flux_x, 1);
    update_halo(ctx, grid, vol_flux_y, 1);

    // --- donor-cell advection, x then y ------------------------------------------
    auto advect_cells = [&](D& vol_flux, int dx, int dy, const char* fname,
                            const char* uname) {
      ops::par_loop(ctx, {fname, hw::KernelClass::Interior, 14.0}, grid,
                    interior,
                    [dx, dy](A mf, A ef, A vf, A d, A e) {
                      const double f = vf(0, 0);
                      const int ux = f > 0.0 ? -dx : 0;
                      const int uy = f > 0.0 ? -dy : 0;
                      mf(0, 0) = f * d(ux, uy);
                      ef(0, 0) = f * d(ux, uy) * e(ux, uy);
                    },
                    ops::arg(mass_flux, ops::S_PT, ops::Acc::W),
                    ops::arg(ener_flux, ops::S_PT, ops::Acc::W),
                    ops::arg(vol_flux, ops::S_PT, ops::Acc::R),
                    ops::arg(density1, s5, ops::Acc::R),
                    ops::arg(energy1, s5, ops::Acc::R));
      update_halo(ctx, grid, mass_flux, 1);
      update_halo(ctx, grid, ener_flux, 1);
      ops::par_loop(ctx, {uname, hw::KernelClass::Interior, 16.0}, grid,
                    interior,
                    [dx, dy](A d, A e, A mf, A ef) {
                      const double dm = mf(0, 0) - mf(dx, dy);
                      const double de = ef(0, 0) - ef(dx, dy);
                      const double rho_new =
                          std::max(kRhoFloor, d(0, 0) + dm);
                      e(0, 0) = (d(0, 0) * e(0, 0) + de) / rho_new;
                      d(0, 0) = rho_new;
                    },
                    ops::arg(density1, ops::S_PT, ops::Acc::RW),
                    ops::arg(energy1, ops::S_PT, ops::Acc::RW),
                    ops::arg(mass_flux, s5, ops::Acc::R),
                    ops::arg(ener_flux, s5, ops::Acc::R));
    };
    advect_cells(vol_flux_x, 1, 0, "advec_cell_flux_x", "advec_cell_upd_x");
    advect_cells(vol_flux_y, 0, 1, "advec_cell_flux_y", "advec_cell_upd_y");

    // --- momentum advection --------------------------------------------------------
    auto advect_momentum = [&](D& vol_flux, int dx, int dy, const char* fname,
                               const char* uname) {
      ops::par_loop(ctx, {fname, hw::KernelClass::Interior, 12.0}, grid,
                    interior,
                    [dx, dy](A mf, A vf, A xv, A yv) {
                      const double f = vf(0, 0);
                      const int ux = f > 0.0 ? -dx : 0;
                      const int uy = f > 0.0 ? -dy : 0;
                      mf.comp(0, 0, 0) = f * xv(ux, uy);
                      mf.comp(1, 0, 0) = f * yv(ux, uy);
                    },
                    ops::arg(mom_flux, ops::S_PT, ops::Acc::W),
                    ops::arg(vol_flux, ops::S_PT, ops::Acc::R),
                    ops::arg(xvel1, s5, ops::Acc::R),
                    ops::arg(yvel1, s5, ops::Acc::R));
      ops::par_loop(ctx, {uname, hw::KernelClass::Interior, 10.0}, grid,
                    interior,
                    [dx, dy](A xv, A yv, A mf) {
                      xv(0, 0) += mf.comp(0, 0, 0) - mf.comp(0, dx, dy);
                      yv(0, 0) += mf.comp(1, 0, 0) - mf.comp(1, dx, dy);
                    },
                    ops::arg(xvel1, ops::S_PT, ops::Acc::RW),
                    ops::arg(yvel1, ops::S_PT, ops::Acc::RW),
                    ops::arg(mom_flux, s5, ops::Acc::R));
    };
    advect_momentum(vol_flux_x, 1, 0, "advec_mom_flux_x", "advec_mom_upd_x");
    advect_momentum(vol_flux_y, 0, 1, "advec_mom_flux_y", "advec_mom_upd_y");

    // --- reset for the next step ------------------------------------------------
    ops::par_loop(ctx, {"reset_field", hw::KernelClass::Interior, 0.0}, grid,
                  interior,
                  [](A d0, A e0, A xv0, A yv0, A d1k, A e1k, A xv1k, A yv1k) {
                    d0(0, 0) = d1k(0, 0);
                    e0(0, 0) = e1k(0, 0);
                    xv0(0, 0) = xv1k(0, 0);
                    yv0(0, 0) = yv1k(0, 0);
                  },
                  ops::arg(density0, ops::S_PT, ops::Acc::W),
                  ops::arg(energy0, ops::S_PT, ops::Acc::W),
                  ops::arg(xvel0, ops::S_PT, ops::Acc::W),
                  ops::arg(yvel0, ops::S_PT, ops::Acc::W),
                  ops::arg(density1, ops::S_PT, ops::Acc::R),
                  ops::arg(energy1, ops::S_PT, ops::Acc::R),
                  ops::arg(xvel1, ops::S_PT, ops::Acc::R),
                  ops::arg(yvel1, ops::S_PT, ops::Acc::R));
    update_halo(ctx, grid, density0, 2);
    update_halo(ctx, grid, energy0, 2);
    update_halo(ctx, grid, xvel0, 1);
    update_halo(ctx, grid, yvel0, 1);
  }

  // --- field summary (mass/energy reductions, once per run) -----------------
  double mass = 0.0, ie = 0.0;
  ops::par_loop(ctx, {"field_summary", hw::KernelClass::Reduction, 6.0}, grid,
                ops::Range::all(grid),
                [](A d, A e, ops::Reducer<double> m, ops::Reducer<double> en) {
                  m += d(0, 0);
                  en += d(0, 0) * e(0, 0);
                },
                ops::arg(density0, ops::S_PT, ops::Acc::R),
                ops::arg(energy0, ops::S_PT, ops::Acc::R),
                ops::reduce(mass, ops::RedOp::Sum),
                ops::reduce(ie, ops::RedOp::Sum));

  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing()) rs.checksum = mass + ie;
  return rs;
}

}  // namespace syclport::apps
