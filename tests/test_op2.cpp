// Unit and property tests for the OP2 unstructured-mesh DSL: maps,
// plans (global/hierarchical colouring validity), all race-resolution
// strategies against a serial reference, gather-locality measurement,
// renumbering, and LoopProfile recording.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <stdexcept>
#include <tuple>

#include "op2/op2.hpp"

namespace op2 = syclport::op2;
namespace hw = syclport::hw;
using syclport::Strategy;

namespace {

/// A ring mesh: n vertices, n edges, edge e connects v(e) and v(e+1 mod n).
struct RingMesh {
  op2::Set vertices;
  op2::Set edges;
  op2::Map e2v;

  explicit RingMesh(std::size_t n)
      : vertices("vertices", n), edges("edges", n), e2v(edges, vertices, 2, "e2v") {
    for (std::size_t e = 0; e < n; ++e) {
      e2v.at(e, 0) = static_cast<int>(e);
      e2v.at(e, 1) = static_cast<int>((e + 1) % n);
    }
  }
};

/// A 2D grid mesh (nv = ny*nx vertices, edges connect 4-neighbours).
struct GridMesh {
  op2::Set vertices;
  op2::Set edges;
  op2::Map e2v;

  static std::size_t edge_count(std::size_t ny, std::size_t nx) {
    return ny * (nx - 1) + (ny - 1) * nx;
  }

  GridMesh(std::size_t ny, std::size_t nx)
      : vertices("v", ny * nx),
        edges("e", edge_count(ny, nx)),
        e2v(edges, vertices, 2, "e2v") {
    std::size_t e = 0;
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i + 1 < nx; ++i, ++e) {
        e2v.at(e, 0) = static_cast<int>(j * nx + i);
        e2v.at(e, 1) = static_cast<int>(j * nx + i + 1);
      }
    for (std::size_t j = 0; j + 1 < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i, ++e) {
        e2v.at(e, 0) = static_cast<int>(j * nx + i);
        e2v.at(e, 1) = static_cast<int>((j + 1) * nx + i);
      }
  }
};

op2::Options opts(Strategy s, op2::Exec x = op2::Exec::Threads,
                  std::size_t block = 16) {
  op2::Options o;
  o.strategy = s;
  o.exec = x;
  o.block_size = block;
  return o;
}

/// Reference: serial scatter of edge contributions to vertex sums.
std::vector<double> serial_scatter(const op2::Map& e2v,
                                   const std::vector<double>& edge_w) {
  std::vector<double> out(e2v.to().size(), 0.0);
  for (std::size_t e = 0; e < e2v.from().size(); ++e) {
    out[static_cast<std::size_t>(e2v.at(e, 0))] += edge_w[e];
    out[static_cast<std::size_t>(e2v.at(e, 1))] -= edge_w[e];
  }
  return out;
}

}  // namespace

TEST(Map, CheckRejectsOutOfRange) {
  op2::Set a("a", 4), b("b", 3);
  op2::Map m(a, b, 1, "m");
  m.at(2, 0) = 5;
  EXPECT_THROW(m.check(), std::out_of_range);
  m.at(2, 0) = 2;
  EXPECT_NO_THROW(m.check());
}

TEST(Plan, GlobalColouringValidOnRing) {
  RingMesh mesh(10);
  const auto plan = op2::build_plan(mesh.e2v, Strategy::GlobalColor);
  EXPECT_TRUE(op2::validate_plan(plan, mesh.e2v));
  // A ring of even length is 2-colourable; odd needs 3.
  EXPECT_EQ(plan.ncolours, 2);
  std::size_t total = 0;
  for (const auto& c : plan.elements_by_colour) total += c.size();
  EXPECT_EQ(total, 10u);
}

TEST(Plan, GlobalColouringOddRingNeedsThree) {
  RingMesh mesh(11);
  const auto plan = op2::build_plan(mesh.e2v, Strategy::GlobalColor);
  EXPECT_TRUE(op2::validate_plan(plan, mesh.e2v));
  EXPECT_EQ(plan.ncolours, 3);
}

TEST(Plan, HierarchicalValidOnGrid) {
  GridMesh mesh(12, 12);
  const auto plan = op2::build_plan(mesh.e2v, Strategy::Hierarchical, 16);
  EXPECT_TRUE(op2::validate_plan(plan, mesh.e2v));
  EXPECT_EQ(plan.nblocks, (mesh.edges.size() + 15) / 16);
  EXPECT_GT(plan.nblock_colours, 0);
  EXPECT_GT(plan.max_intra_colours, 0);
  // Every element must have an intra colour.
  for (std::size_t e = 0; e < plan.nelems; ++e)
    EXPECT_GE(plan.intra_colour[e], 0);
}

TEST(Plan, PropertyRandomMeshesColourValidly) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nv = 40 + static_cast<std::size_t>(rng() % 60);
    const std::size_t ne = 2 * nv;
    op2::Set verts("v", nv), edges("e", ne);
    op2::Map e2v(edges, verts, 2, "e2v");
    for (std::size_t e = 0; e < ne; ++e) {
      const int a = static_cast<int>(rng() % nv);
      int b = static_cast<int>(rng() % nv);
      if (b == a) b = (b + 1) % static_cast<int>(nv);
      e2v.at(e, 0) = a;
      e2v.at(e, 1) = b;
    }
    for (Strategy s : {Strategy::GlobalColor, Strategy::Hierarchical}) {
      const auto plan = op2::build_plan(e2v, s, 8);
      EXPECT_TRUE(op2::validate_plan(plan, e2v)) << "trial " << trial;
    }
  }
}

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<Strategy, op2::Exec>> {};

TEST_P(StrategySweep, ScatterMatchesSerialReference) {
  const auto [strategy, exec] = GetParam();
  GridMesh mesh(20, 20);
  std::vector<double> weights(mesh.edges.size());
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& w : weights) w = dist(rng);

  op2::Context ctx(opts(strategy, exec));
  op2::Dat<double> ew(mesh.edges, 1, "w");
  op2::Dat<double> vsum(mesh.vertices, 1, "sum");
  for (std::size_t e = 0; e < weights.size(); ++e) ew.at(e) = weights[e];

  op2::par_loop(ctx, {"scatter", 2.0}, mesh.edges,
                [](const double* w, op2::Inc<double> v0, op2::Inc<double> v1) {
                  v0.add(0, w[0]);
                  v1.add(0, -w[0]);
                },
                op2::arg_direct(ew, op2::Acc::R),
                op2::arg_inc(vsum, mesh.e2v, 0),
                op2::arg_inc(vsum, mesh.e2v, 1));

  const auto ref = serial_scatter(mesh.e2v, weights);
  for (std::size_t v = 0; v < ref.size(); ++v)
    ASSERT_NEAR(vsum.at(v), ref[v], 1e-12) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    All, StrategySweep,
    ::testing::Combine(::testing::Values(Strategy::Atomics,
                                         Strategy::GlobalColor,
                                         Strategy::Hierarchical),
                       ::testing::Values(op2::Exec::Serial, op2::Exec::Threads,
                                         op2::Exec::Sycl)),
    [](const auto& info) {
      std::string name{syclport::to_string(std::get<0>(info.param))};
      switch (std::get<1>(info.param)) {
        case op2::Exec::Serial: name += "_serial"; break;
        case op2::Exec::Threads: name += "_threads"; break;
        case op2::Exec::Sycl: name += "_sycl"; break;
      }
      return name;
    });

TEST(ParLoop, DirectLoopAllStrategiesIdentical) {
  RingMesh mesh(100);
  for (Strategy s :
       {Strategy::Atomics, Strategy::GlobalColor, Strategy::Hierarchical}) {
    op2::Context ctx(opts(s));
    op2::Dat<double> x(mesh.edges, 2, "x");
    for (std::size_t e = 0; e < 100; ++e) {
      x.at(e, 0) = 1.0;
      x.at(e, 1) = 2.0;
    }
    op2::par_loop(ctx, {"double_it", 2.0}, mesh.edges,
                  [](double* v) {
                    v[0] *= 2.0;
                    v[1] *= 3.0;
                  },
                  op2::arg_direct(x, op2::Acc::RW));
    EXPECT_DOUBLE_EQ(x.sum(), 100.0 * (2.0 + 6.0));
  }
}

TEST(ParLoop, IndirectReadGather) {
  RingMesh mesh(50);
  op2::Context ctx(opts(Strategy::Atomics));
  op2::Dat<double> vval(mesh.vertices, 1, "v");
  op2::Dat<double> ediff(mesh.edges, 1, "d");
  for (std::size_t v = 0; v < 50; ++v) vval.at(v) = static_cast<double>(v);
  op2::par_loop(ctx, {"diff", 1.0}, mesh.edges,
                [](double* d, const double* a, const double* b) {
                  d[0] = b[0] - a[0];
                },
                op2::arg_direct(ediff, op2::Acc::W),
                op2::arg_indirect(vval, mesh.e2v, 0, op2::Acc::R),
                op2::arg_indirect(vval, mesh.e2v, 1, op2::Acc::R));
  // All edges have diff 1 except the wrap-around edge (0 - 49 = -49).
  EXPECT_DOUBLE_EQ(ediff.sum(), 49.0 * 1.0 - 49.0);
}

TEST(ParLoop, GlobalReduction) {
  RingMesh mesh(64);
  op2::Context ctx(opts(Strategy::Atomics));
  op2::Dat<double> w(mesh.edges, 1, "w");
  for (std::size_t e = 0; e < 64; ++e) w.at(e) = 0.5;
  double total = 0.0;
  op2::par_loop(ctx, {"sum", 1.0}, mesh.edges,
                [](const double* v, op2::Reducer<double> r) { r += v[0]; },
                op2::arg_direct(w, op2::Acc::R),
                op2::arg_gbl(total, op2::RedOp::Sum));
  EXPECT_DOUBLE_EQ(total, 32.0);
}

TEST(Profiles, EdgeLoopAccountsDatsMapsOnce) {
  GridMesh mesh(10, 10);
  op2::Context ctx(opts(Strategy::Atomics));
  op2::Dat<double> ew(mesh.edges, 1, "w");
  op2::Dat<double> vres(mesh.vertices, 5, "res");
  op2::par_loop(ctx, {"flux", 30.0}, mesh.edges,
                [](const double* w, op2::Inc<double> a, op2::Inc<double> b) {
                  a.add(0, w[0]);
                  b.add(0, w[0]);
                },
                op2::arg_direct(ew, op2::Acc::R),
                op2::arg_inc(vres, mesh.e2v, 0),
                op2::arg_inc(vres, mesh.e2v, 1));
  ASSERT_EQ(ctx.profiles.size(), 1u);
  const auto& lp = ctx.profiles[0];
  const double ne = static_cast<double>(mesh.edges.size());
  const double nv = static_cast<double>(mesh.vertices.size());
  EXPECT_DOUBLE_EQ(lp.bytes_read, ne * 8 + nv * 5 * 8);   // w + res (INC reads)
  EXPECT_DOUBLE_EQ(lp.bytes_written, nv * 5 * 8);         // res once, not twice
  EXPECT_DOUBLE_EQ(lp.map_bytes, ne * 2 * 4);             // e2v once
  EXPECT_EQ(lp.cls, hw::KernelClass::EdgeFlux);
  EXPECT_EQ(lp.atomic_updates, mesh.edges.size() * 2 * 5);
  EXPECT_EQ(lp.launches, 1u);
  EXPECT_GE(lp.gather_line_factor, 1.0);
}

TEST(Profiles, ColouringIncreasesLaunches) {
  GridMesh mesh(16, 16);
  op2::Dat<double>* dummy = nullptr;
  (void)dummy;
  auto launches_for = [&](Strategy s) {
    op2::Context ctx(opts(s, op2::Exec::Serial, 16));
    op2::Dat<double> ew(mesh.edges, 1, "w");
    op2::Dat<double> vres(mesh.vertices, 1, "r");
    op2::par_loop(ctx, {"flux"}, mesh.edges,
                  [](const double* w, op2::Inc<double> a, op2::Inc<double> b) {
                    a.add(0, w[0]);
                    b.add(0, w[0]);
                  },
                  op2::arg_direct(ew, op2::Acc::R),
                  op2::arg_inc(vres, mesh.e2v, 0),
                  op2::arg_inc(vres, mesh.e2v, 1));
    return ctx.profiles[0].launches;
  };
  EXPECT_EQ(launches_for(Strategy::Atomics), 1u);
  EXPECT_GT(launches_for(Strategy::GlobalColor), 1u);
  EXPECT_GT(launches_for(Strategy::Hierarchical), 1u);
}

TEST(Locality, GlobalColouringScattersGathers) {
  // The paper's Figure-1 narrative quantified: global colouring's
  // execution order must touch many more lines per wave than the
  // natural (atomics) order on a well-ordered mesh.
  GridMesh mesh(64, 64);
  const auto atom_plan = op2::build_plan(mesh.e2v, Strategy::Atomics);
  const auto glob_plan = op2::build_plan(mesh.e2v, Strategy::GlobalColor);
  const auto hier_plan = op2::build_plan(mesh.e2v, Strategy::Hierarchical, 256);
  const auto atom = op2::measure_gather(mesh.e2v, 5, 8,
                                        op2::execution_order(atom_plan));
  const auto glob = op2::measure_gather(mesh.e2v, 5, 8,
                                        op2::execution_order(glob_plan));
  const auto hier = op2::measure_gather(mesh.e2v, 5, 8,
                                        op2::execution_order(hier_plan));
  // On a low-degree structured grid the colour stride is small, so the
  // contrast is modest; MG-CFD's high-degree mesh shows the paper's
  // 11x spread (asserted in test_mgcfd.cpp). Ordering must still hold.
  EXPECT_GT(glob.avg_bytes_per_wave, 1.25 * atom.avg_bytes_per_wave);
  EXPECT_GE(hier.avg_bytes_per_wave, 0.95 * atom.avg_bytes_per_wave);
  EXPECT_LE(hier.avg_bytes_per_wave, glob.avg_bytes_per_wave);
  EXPECT_GT(glob.line_factor, atom.line_factor);
}

TEST(Renumber, OrderingImprovesLocality) {
  // Shuffle a grid mesh's edges, then renumber by min target: locality
  // must recover.
  GridMesh mesh(48, 48);
  std::mt19937 rng(3);
  std::vector<int> shuffle(mesh.edges.size());
  std::iota(shuffle.begin(), shuffle.end(), 0);
  std::shuffle(shuffle.begin(), shuffle.end(), rng);
  op2::permute_map(mesh.e2v, shuffle);

  const auto plan = op2::build_plan(mesh.e2v, Strategy::Atomics);
  const auto before =
      op2::measure_gather(mesh.e2v, 5, 8, op2::execution_order(plan));
  const auto perm = op2::order_by_min_target(mesh.e2v);
  op2::permute_map(mesh.e2v, perm);
  const auto after =
      op2::measure_gather(mesh.e2v, 5, 8, op2::execution_order(plan));
  EXPECT_LT(after.avg_bytes_per_wave, 0.6 * before.avg_bytes_per_wave);
}

TEST(Renumber, PermuteDatFollowsMap) {
  RingMesh mesh(8);
  op2::Dat<double> w(mesh.edges, 1, "w");
  for (std::size_t e = 0; e < 8; ++e) w.at(e) = static_cast<double>(e);
  std::vector<int> perm{7, 6, 5, 4, 3, 2, 1, 0};
  op2::permute_dat(w, perm);
  for (std::size_t e = 0; e < 8; ++e)
    EXPECT_DOUBLE_EQ(w.at(e), static_cast<double>(7 - e));
}

TEST(ModelOnly, RecordsWithoutAllocatingOrRunning) {
  GridMesh mesh(8, 8);
  op2::Options o = opts(Strategy::GlobalColor, op2::Exec::Serial);
  o.mode = op2::Mode::ModelOnly;
  op2::Context ctx(o);
  op2::Dat<double> ew(mesh.edges, 1, "w", /*allocate=*/false);
  op2::Dat<double> vres(mesh.vertices, 1, "r", /*allocate=*/false);
  int calls = 0;
  op2::par_loop(ctx, {"flux"}, mesh.edges,
                [&calls](const double*, op2::Inc<double>, op2::Inc<double>) {
                  ++calls;
                },
                op2::arg_direct(ew, op2::Acc::R),
                op2::arg_inc(vres, mesh.e2v, 0),
                op2::arg_inc(vres, mesh.e2v, 1));
  EXPECT_EQ(calls, 0);
  ASSERT_EQ(ctx.profiles.size(), 1u);
  EXPECT_GT(ctx.profiles[0].launches, 1u);  // colouring still analysed
}

TEST(ParLoop, MismatchedIncMapsRejected) {
  GridMesh mesh(4, 4);
  op2::Map other(mesh.edges, mesh.vertices, 2, "other");
  for (std::size_t e = 0; e < mesh.edges.size(); ++e) {
    other.at(e, 0) = mesh.e2v.at(e, 0);
    other.at(e, 1) = mesh.e2v.at(e, 1);
  }
  op2::Context ctx(opts(Strategy::Atomics));
  op2::Dat<double> vres(mesh.vertices, 1, "r");
  EXPECT_THROW(
      op2::par_loop(ctx, {"bad"}, mesh.edges,
                    [](op2::Inc<double>, op2::Inc<double>) {},
                    op2::arg_inc(vres, mesh.e2v, 0),
                    op2::arg_inc(vres, other, 1)),
      std::invalid_argument);
}

TEST(LoopChain, DirectChainFusesElementWise) {
  // Three direct loops (incl. a global reduction) over one set fuse
  // into a single element-wise sweep: one segment, bit-identical to the
  // unfused reference, with the full internal bound eliminated.
  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Serial));
  op2::Set verts("n", 257);
  op2::Dat<double> x(verts, 1, "x"), y(verts, 1, "y"), z(verts, 1, "z");
  for (std::size_t e = 0; e < verts.size(); ++e)
    x.at(e) = 0.01 * static_cast<double>(e) - 3.0;

  auto run = [&](std::optional<bool> fuse) {
    y.fill(0.0);
    z.fill(0.0);
    double mass = 0.0;
    op2::LoopChain chain(ctx);
    chain.enqueue({"scale"}, verts,
                  [](double* yy, const double* xx) {
                    yy[0] = 2.0 * xx[0] + 1.0;
                  },
                  op2::arg_direct(y, op2::Acc::W),
                  op2::arg_direct(x, op2::Acc::R));
    chain.enqueue({"combine"}, verts,
                  [](double* zz, const double* yy, const double* xx) {
                    zz[0] = yy[0] * xx[0] - 0.5;
                  },
                  op2::arg_direct(z, op2::Acc::W),
                  op2::arg_direct(y, op2::Acc::R),
                  op2::arg_direct(x, op2::Acc::R));
    chain.enqueue({"mass"}, verts,
                  [](const double* zz, op2::Reducer<double> r) { r += zz[0]; },
                  op2::arg_direct(z, op2::Acc::R),
                  op2::arg_gbl(mass, op2::RedOp::Sum));
    chain.execute(fuse);
    EXPECT_EQ(chain.last_segments(), 1u);
    return std::tuple(y.sum(), z.sum(), mass, chain.last_fused(),
                      chain.last_eliminated_bytes());
  };
  const auto [y0, z0, m0, f0, e0] = run(false);
  EXPECT_FALSE(f0);
  EXPECT_DOUBLE_EQ(e0, 0.0);
  const auto [y1, z1, m1, f1, e1] = run(true);
  EXPECT_TRUE(f1);
  EXPECT_GT(e1, 0.0);
  EXPECT_DOUBLE_EQ(y1, y0);
  EXPECT_DOUBLE_EQ(z1, z0);
  EXPECT_DOUBLE_EQ(m1, m0);
  const auto [y2, z2, m2, f2, e2] = run(std::nullopt);  // default: fused
  EXPECT_TRUE(f2);
  EXPECT_GT(e2, 0.0);
  EXPECT_DOUBLE_EQ(y2, y0);
  EXPECT_DOUBLE_EQ(z2, z0);
  EXPECT_DOUBLE_EQ(m2, m0);
}

TEST(LoopChain, IndirectLoopAndSetChangeSplitSegments) {
  // direct-on-vertices, indirect-on-edges, direct-on-vertices: the
  // indirect loop is not element-local, so the chain runs as three
  // segments and must match eager par_loop execution exactly.
  RingMesh mesh(64);
  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Serial));
  op2::Dat<double> xv(mesh.vertices, 1, "xv"), we(mesh.edges, 1, "we"),
      sv(mesh.vertices, 1, "sv");
  auto reinit = [&] {
    for (std::size_t v = 0; v < mesh.vertices.size(); ++v)
      xv.at(v) = 0.1 * static_cast<double>(v) - 1.0;
    we.fill(0.0);
    sv.fill(0.0);
  };
  auto sq = [](double* s, const double* x) { s[0] = x[0] * x[0]; };
  auto diff = [](double* e, const double* a, const double* b) {
    e[0] = a[0] - b[0];
  };
  auto acc = [](double* s, const double* x) { s[0] += 0.5 * x[0]; };

  reinit();
  op2::par_loop(ctx, {"sq"}, mesh.vertices, sq,
                op2::arg_direct(sv, op2::Acc::W),
                op2::arg_direct(xv, op2::Acc::R));
  op2::par_loop(ctx, {"diff"}, mesh.edges, diff,
                op2::arg_direct(we, op2::Acc::W),
                op2::arg_indirect(xv, mesh.e2v, 0, op2::Acc::R),
                op2::arg_indirect(xv, mesh.e2v, 1, op2::Acc::R));
  op2::par_loop(ctx, {"acc"}, mesh.vertices, acc,
                op2::arg_direct(sv, op2::Acc::RW),
                op2::arg_direct(xv, op2::Acc::R));
  const double we_ref = we.sum();
  const double sv_ref = sv.sum();

  reinit();
  op2::LoopChain chain(ctx);
  chain.enqueue({"sq"}, mesh.vertices, sq, op2::arg_direct(sv, op2::Acc::W),
                op2::arg_direct(xv, op2::Acc::R));
  chain.enqueue({"diff"}, mesh.edges, diff,
                op2::arg_direct(we, op2::Acc::W),
                op2::arg_indirect(xv, mesh.e2v, 0, op2::Acc::R),
                op2::arg_indirect(xv, mesh.e2v, 1, op2::Acc::R));
  chain.enqueue({"acc"}, mesh.vertices, acc,
                op2::arg_direct(sv, op2::Acc::RW),
                op2::arg_direct(xv, op2::Acc::R));
  chain.execute(true);
  EXPECT_EQ(chain.last_segments(), 3u);
  EXPECT_DOUBLE_EQ(we.sum(), we_ref);
  EXPECT_DOUBLE_EQ(sv.sum(), sv_ref);
}

TEST(LoopChain, ThrowLeavesChainReusable) {
  // A kernel throw mid-execute clears the queue on unwind; the chain
  // stays usable afterwards.
  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Serial));
  op2::Set verts("n", 16);
  op2::Dat<double> a(verts, 1, "a"), b(verts, 1, "b");
  a.fill(1.25);
  b.fill(0.0);

  auto twice = [](double* bb, const double* aa) { bb[0] = 2.0 * aa[0]; };
  op2::LoopChain chain(ctx);
  chain.enqueue({"ok"}, verts, twice, op2::arg_direct(b, op2::Acc::W),
                op2::arg_direct(a, op2::Acc::R));
  chain.enqueue({"boom"}, verts,
                [](double* bb, const double* aa) {
                  if (aa[0] != 12345.0)
                    throw std::runtime_error("op2 chain kernel failure");
                  bb[0] = aa[0];
                },
                op2::arg_direct(b, op2::Acc::RW),
                op2::arg_direct(a, op2::Acc::R));
  EXPECT_THROW(chain.execute(true), std::runtime_error);
  EXPECT_EQ(chain.size(), 0u);

  chain.enqueue({"ok2"}, verts, twice, op2::arg_direct(b, op2::Acc::W),
                op2::arg_direct(a, op2::Acc::R));
  chain.execute();
  EXPECT_DOUBLE_EQ(b.sum(), 2.0 * a.sum());
}
