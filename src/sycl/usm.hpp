#pragma once
/// \file usm.hpp
/// miniSYCL unified shared memory. Device == host here, so every USM
/// flavour is host memory; a registry tracks outstanding allocations so
/// tests can assert leak-freedom (the moral equivalent of running under
/// a USM-aware sanitizer).
///
/// Allocation routes through rt::mem: pooled size classes, parallel
/// first-touch page placement, and the huge-page path for large counts.
/// The subsystem records the alignment it chose per block, so free
/// pairs the exact allocation parameters regardless of which path
/// (64-byte or 2 MiB huge) served the request - the alignment
/// round-trip lives in one place instead of being repeated at every
/// call site. All three flavours (device/shared/host) honour the same
/// >= 64-byte alignment.

#include <cstddef>
#include <mutex>
#include <new>
#include <unordered_map>

#include "runtime/mem/mem.hpp"
#include "sycl/queue.hpp"

namespace sycl {

namespace detail {
class usm_registry {
 public:
  static usm_registry& instance() {
    static usm_registry r;
    return r;
  }
  void add(void* p, std::size_t bytes) {
    std::lock_guard lock(mu_);
    auto [it, inserted] = allocs_.emplace(p, bytes);
    if (!inserted) {
      // Re-registering a recycled pointer: replace the stale entry.
      total_bytes_ -= it->second;
      it->second = bytes;
    }
    total_bytes_ += bytes;
  }
  bool remove(void* p) {
    std::lock_guard lock(mu_);
    auto it = allocs_.find(p);
    if (it == allocs_.end()) return false;
    total_bytes_ -= it->second;
    allocs_.erase(it);
    return true;
  }
  [[nodiscard]] std::size_t outstanding() const {
    std::lock_guard lock(mu_);
    return allocs_.size();
  }
  /// Running total maintained in add/remove - O(1), no scan.
  [[nodiscard]] std::size_t outstanding_bytes() const {
    std::lock_guard lock(mu_);
    return total_bytes_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<void*, std::size_t> allocs_;
  std::size_t total_bytes_ = 0;
};
}  // namespace detail

template <typename T>
[[nodiscard]] T* malloc_device(std::size_t count, const queue&) {
  T* p = static_cast<T*>(
      syclport::rt::mem::alloc(count * sizeof(T), syclport::rt::mem::Init::Touch));
  detail::usm_registry::instance().add(p, count * sizeof(T));
  return p;
}

template <typename T>
[[nodiscard]] T* malloc_shared(std::size_t count, const queue& q) {
  return malloc_device<T>(count, q);
}

template <typename T>
[[nodiscard]] T* malloc_host(std::size_t count, const queue& q) {
  return malloc_device<T>(count, q);
}

inline void free(void* ptr, const queue&) {
  if (ptr == nullptr) return;
  // Freeing USM is a synchronization point for commands that declared
  // this allocation in their footprint (via handler::require).
  detail::sync_host_access(ptr);
  detail::usm_registry::instance().remove(ptr);
  // rt::mem recorded the block's size and alignment at allocation and
  // replays them here (pool return or exact sized/aligned delete).
  syclport::rt::mem::dealloc(ptr);
}

/// Number of live USM allocations (test hook).
[[nodiscard]] inline std::size_t usm_outstanding() {
  return detail::usm_registry::instance().outstanding();
}

/// Bytes in live USM allocations (test hook; O(1)).
[[nodiscard]] inline std::size_t usm_outstanding_bytes() {
  return detail::usm_registry::instance().outstanding_bytes();
}

}  // namespace sycl
