#pragma once
/// \file mesh.hpp
/// Synthetic "rotor-like" unstructured mesh with a multigrid hierarchy.
/// The paper's MG-CFD case is NASA Rotor37 (8M vertices), which is not
/// redistributable; this generator produces the same *structural*
/// workload (DESIGN.md §2): an extruded annulus sector of nodes with
/// edge connectivity of degree ~14 (axial/radial/tangential plus
/// in-plane diagonals, like a prismatic CFD mesh), lexicographic
/// numbering (the "good mesh ordering" the atomics strategy relies on),
/// and per-level coarsening maps for the multigrid proxy.

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "op2/op2.hpp"

namespace syclport::apps::mgcfd {

struct Level {
  std::array<std::size_t, 3> dims{};  ///< (radial, tangential, axial) nodes
  std::unique_ptr<op2::Set> nodes;
  std::unique_ptr<op2::Set> edges;
  std::unique_ptr<op2::Map> e2n;  ///< edges -> 2 nodes
  /// For levels > 0: map from the *finer* level's nodes to this level's
  /// nodes (arity 1), used by restrict/prolong.
  std::unique_ptr<op2::Map> from_fine;
  std::vector<std::array<double, 3>> coords;  ///< node positions
};

struct MultigridMesh {
  std::vector<Level> levels;  ///< [0] finest

  [[nodiscard]] std::size_t fine_nodes() const {
    return levels.front().nodes->size();
  }
  [[nodiscard]] std::size_t fine_edges() const {
    return levels.front().edges->size();
  }
};

/// Build the hierarchy: level 0 has (ni x nj x nk) nodes; each coarser
/// level halves every dimension (minimum 2). All maps are validated.
[[nodiscard]] MultigridMesh build_rotor_mesh(std::size_t ni, std::size_t nj,
                                             std::size_t nk, int nlevels = 3);

/// Renumber every level of the hierarchy with ordering `o`
/// (op2/renumber.hpp): nodes are reordered (RCM over the edge graph,
/// or a space-filling curve over the coordinates), every map touching
/// them is relabeled/permuted consistently, and edges are then sorted
/// by ascending minimum endpoint - the locality order the atomics
/// strategy's "good mesh ordering" argument assumes. Each permutation
/// is recorded on its Set (note_permutation), so checkpoints stay in
/// canonical creation-time order. Must run before dats are created on
/// the mesh's sets; run_mgcfd's config overload applies
/// SYCLPORT_RENUMBER here. Identity is a no-op.
void renumber_mesh(MultigridMesh& m, op2::Ordering o);

}  // namespace syclport::apps::mgcfd
