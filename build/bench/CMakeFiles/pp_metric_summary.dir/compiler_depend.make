# Empty compiler generated dependencies file for pp_metric_summary.
# This may be replaced when dependencies are built.
