// Integration tests for MG-CFD: mesh hierarchy sanity, conservation of
// the flux kernel, equivalence across race-resolution strategies and
// executors, and the paper's locality narrative on a high-degree mesh.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "apps/mgcfd/mgcfd.hpp"

namespace apps = syclport::apps;
namespace op2 = syclport::op2;
namespace hw = syclport::hw;
using syclport::Strategy;

namespace {
op2::Options strategy_opts(Strategy s, op2::Exec x = op2::Exec::Threads) {
  op2::Options o;
  o.strategy = s;
  o.exec = x;
  o.block_size = 64;
  return o;
}
}  // namespace

TEST(Mesh, HierarchyShrinksByEight) {
  const auto mesh = apps::mgcfd::build_rotor_mesh(16, 12, 8, 3);
  ASSERT_EQ(mesh.levels.size(), 3u);
  EXPECT_EQ(mesh.fine_nodes(), 16u * 12 * 8);
  EXPECT_LT(mesh.levels[1].nodes->size(), mesh.levels[0].nodes->size() / 4);
  EXPECT_LT(mesh.levels[2].nodes->size(), mesh.levels[1].nodes->size());
  for (const auto& lvl : mesh.levels) {
    EXPECT_GT(lvl.edges->size(), lvl.nodes->size());  // degree > 2
  }
}

TEST(Mesh, FromFineMapsCoverCoarseNodes) {
  const auto mesh = apps::mgcfd::build_rotor_mesh(12, 10, 8, 3);
  for (std::size_t l = 1; l < mesh.levels.size(); ++l) {
    const auto& f2c = *mesh.levels[l].from_fine;
    std::vector<int> hit(mesh.levels[l].nodes->size(), 0);
    for (std::size_t n = 0; n < f2c.from().size(); ++n)
      hit[static_cast<std::size_t>(f2c.at(n, 0))] = 1;
    for (int h : hit) EXPECT_EQ(h, 1);  // every coarse node receives
  }
}

TEST(Mesh, EdgeDegreeIsHigh) {
  // In-plane diagonals push average vertex degree well above a plain
  // structured grid's 6 - needed for the paper's colouring contrast.
  const auto mesh = apps::mgcfd::build_rotor_mesh(20, 20, 10, 1);
  const double avg_degree =
      2.0 * static_cast<double>(mesh.fine_edges()) /
      static_cast<double>(mesh.fine_nodes());
  EXPECT_GT(avg_degree, 8.0);
}

TEST(Mgcfd, RunsAndConservesMass) {
  auto mesh = apps::mgcfd::build_rotor_mesh(10, 8, 6, 3);
  const auto rs =
      apps::run_mgcfd(strategy_opts(Strategy::Atomics), mesh, 2);
  EXPECT_TRUE(std::isfinite(rs.checksum));
  EXPECT_GT(rs.checksum, 0.0);
}

TEST(Mgcfd, StrategiesAgree) {
  // All three race-resolution strategies must produce the same physics
  // (atomics only reorders floating-point adds).
  const auto cfg = apps::mgcfd_small();
  double ref = 0.0;
  bool first = true;
  for (Strategy s :
       {Strategy::GlobalColor, Strategy::Hierarchical, Strategy::Atomics}) {
    for (op2::Exec x : {op2::Exec::Serial, op2::Exec::Threads, op2::Exec::Sycl}) {
      const auto rs = apps::run_mgcfd(strategy_opts(s, x), cfg);
      if (first) {
        ref = rs.checksum;
        first = false;
      } else {
        EXPECT_NEAR(rs.checksum, ref, 1e-8 * std::fabs(ref))
            << syclport::to_string(s);
      }
    }
  }
}

TEST(Mgcfd, FluxKernelDominatesTraffic) {
  auto mesh = apps::mgcfd::build_rotor_mesh(12, 10, 8, 3);
  const auto rs = apps::run_mgcfd(strategy_opts(Strategy::Atomics), mesh, 1);
  double flux_bytes = 0, total = 0;
  for (const auto& p : rs.profiles) {
    total += p.total_bytes();
    if (p.name == "compute_flux") flux_bytes += p.total_bytes();
  }
  EXPECT_GT(flux_bytes / total, 0.35);
}

TEST(Mgcfd, CoarseLevelsHaveSmallerWorkingSets) {
  auto mesh = apps::mgcfd::build_rotor_mesh(16, 12, 8, 3);
  const auto rs = apps::run_mgcfd(strategy_opts(Strategy::Atomics), mesh, 1);
  // compute_flux appears once per level per iteration, fine level first.
  std::vector<double> flux_ws;
  for (const auto& p : rs.profiles)
    if (p.name == "compute_flux") flux_ws.push_back(p.working_set);
  ASSERT_EQ(flux_ws.size(), 3u);
  EXPECT_GT(flux_ws[0], 4.0 * flux_ws[1]);
  EXPECT_GT(flux_ws[1], 2.0 * flux_ws[2]);
}

TEST(Mgcfd, LocalityContrastMatchesPaperNarrative) {
  // Paper §4.3 (MI250X): atomics ~3500 B/wave, hierarchical ~8600,
  // global colouring ~39000. On the rotor-like mesh the measured
  // ordering and a pronounced spread must reproduce.
  auto mesh = apps::mgcfd::build_rotor_mesh(24, 20, 12, 1);
  auto factor = [&](Strategy s) {
    op2::Context ctx(strategy_opts(s));
    auto mesh_local = apps::mgcfd::build_rotor_mesh(24, 20, 12, 1);
    op2::Dat<double> ew(*mesh_local.levels[0].edges, 3, "w");
    op2::Dat<double> flux(*mesh_local.levels[0].nodes, 5, "f");
    op2::par_loop(ctx, {"probe"}, *mesh_local.levels[0].edges,
                  [](const double*, op2::Inc<double> a, op2::Inc<double> b) {
                    a.add(0, 1.0);
                    b.add(0, 1.0);
                  },
                  op2::arg_direct(ew, op2::Acc::R),
                  op2::arg_inc(flux, *mesh_local.levels[0].e2n, 0),
                  op2::arg_inc(flux, *mesh_local.levels[0].e2n, 1));
    return ctx.profiles[0].gather_line_factor;
  };
  const double atom = factor(Strategy::Atomics);
  const double glob = factor(Strategy::GlobalColor);
  const double hier = factor(Strategy::Hierarchical);
  EXPECT_LT(atom, hier);
  EXPECT_LT(hier, glob);
  // Raw line-traffic spread; the paper's full 11x separation appears
  // only after the cache model amplifies it (verified in the figure-8
  // bench), so assert a clear but smaller raw contrast here.
  EXPECT_GT(glob / atom, 2.0);
}

TEST(Mgcfd, AtomicUpdateCountsOnlyForAtomicsStrategy) {
  const auto cfg = apps::mgcfd_small();
  auto count_atomics = [&](Strategy s) {
    auto mesh = apps::mgcfd::build_rotor_mesh(cfg.ni, cfg.nj, cfg.nk, 2);
    const auto rs = apps::run_mgcfd(strategy_opts(s), mesh, 1);
    std::size_t n = 0;
    for (const auto& p : rs.profiles) n += p.atomic_updates;
    return n;
  };
  EXPECT_GT(count_atomics(Strategy::Atomics), 0u);
  EXPECT_EQ(count_atomics(Strategy::GlobalColor), 0u);
}

TEST(Mgcfd, ModelOnlyPaperScaleMeshTooBigIsNotBuilt) {
  // ModelOnly runs still need the mesh (colouring is real), so the
  // study uses the bench mesh and scales traffic; verify the bench mesh
  // is buildable and produces full profiles quickly.
  const auto cfg = apps::mgcfd_bench();
  auto mesh = apps::mgcfd::build_rotor_mesh(16, 12, 10, cfg.levels);
  op2::Options o = strategy_opts(Strategy::Hierarchical, op2::Exec::Serial);
  o.mode = op2::Mode::ModelOnly;
  const auto rs = apps::run_mgcfd(o, mesh, 2);
  EXPECT_EQ(rs.checksum, 0.0);
  EXPECT_GT(rs.profiles.size(), 20u);
  for (const auto& p : rs.profiles)
    if (p.name == "compute_flux") EXPECT_GT(p.launches, 0u);
}


#include "apps/mgcfd/mesh_io.hpp"

TEST(MeshIo, RoundTripPreservesHierarchy) {
  const auto mesh = syclport::apps::mgcfd::build_rotor_mesh(10, 8, 6, 3);
  const std::string path = "/tmp/syclport_mesh_roundtrip.txt";
  syclport::apps::mgcfd::save_mesh(path, mesh);
  const auto loaded = syclport::apps::mgcfd::load_mesh(path);

  ASSERT_EQ(loaded.levels.size(), mesh.levels.size());
  for (std::size_t l = 0; l < mesh.levels.size(); ++l) {
    const auto& a = mesh.levels[l];
    const auto& b = loaded.levels[l];
    ASSERT_EQ(b.nodes->size(), a.nodes->size());
    ASSERT_EQ(b.edges->size(), a.edges->size());
    EXPECT_EQ(b.dims, a.dims);
    for (std::size_t e = 0; e < a.edges->size(); ++e)
      for (int i = 0; i < a.e2n->arity(); ++i)
        ASSERT_EQ(b.e2n->at(e, i), a.e2n->at(e, i));
    for (std::size_t n = 0; n < a.nodes->size(); ++n)
      for (int d = 0; d < 3; ++d)
        ASSERT_NEAR(b.coords[n][d], a.coords[n][d], 1e-12);
    if (l > 0) {
      for (std::size_t n = 0; n < mesh.levels[l - 1].nodes->size(); ++n)
        ASSERT_EQ(b.from_fine->at(n, 0), a.from_fine->at(n, 0));
    }
  }
}

TEST(MeshIo, LoadedMeshRunsMgcfd) {
  const auto mesh = syclport::apps::mgcfd::build_rotor_mesh(10, 8, 6, 3);
  const std::string path = "/tmp/syclport_mesh_run.txt";
  syclport::apps::mgcfd::save_mesh(path, mesh);
  auto loaded = syclport::apps::mgcfd::load_mesh(path);

  op2::Options o;
  o.strategy = Strategy::Atomics;
  auto mesh2 = syclport::apps::mgcfd::build_rotor_mesh(10, 8, 6, 3);
  op2::Options o2 = o;
  const double ref = apps::run_mgcfd(o2, mesh2, 2).checksum;
  const double got = apps::run_mgcfd(o, loaded, 2).checksum;
  EXPECT_DOUBLE_EQ(got, ref);
}

TEST(MeshIo, RejectsCorruptFiles) {
  const std::string path = "/tmp/syclport_mesh_bad.txt";
  {
    std::ofstream f(path);
    f << "not-a-mesh 9\n";
  }
  EXPECT_THROW(syclport::apps::mgcfd::load_mesh(path), std::runtime_error);
  EXPECT_THROW(syclport::apps::mgcfd::load_mesh("/nonexistent/mesh.txt"),
               std::runtime_error);
}
