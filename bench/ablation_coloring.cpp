// Ablation: race-resolution strategy locality (paper §4.3). Measures
// bytes per 64-wide wave and the reuse-profile gather factors on the
// rotor-like mesh for the three strategies, against the paper's
// MI250X profiler numbers (atomics ~3500 B/wave 91% L2 hits; global
// ~39000 58%; hierarchical ~8600 83%).

#include <iostream>

#include "apps/mgcfd/mesh.hpp"
#include "core/report.hpp"
#include "op2/op2.hpp"

using namespace syclport;

int main() {
  std::cout << "=== Ablation: colouring strategy locality ===\n\n";
  auto mesh = apps::mgcfd::build_rotor_mesh(64, 56, 40, 1);
  const auto& e2n = *mesh.levels[0].e2n;

  report::Table t({"strategy", "bytes/wave", "paper B/wave (MI250X)",
                   "cold line factor", "launches"});
  struct Ref { Strategy s; const char* paper; };
  for (const Ref ref : {Ref{Strategy::Atomics, "3500"},
                        Ref{Strategy::Hierarchical, "8600"},
                        Ref{Strategy::GlobalColor, "39000"}}) {
    const auto plan = op2::build_plan(e2n, ref.s, 256);
    const auto order = op2::execution_order(plan);
    const auto gs = op2::measure_gather(e2n, 5, 8, order, 64);
    t.add_row({std::string(to_string(ref.s)),
               report::fmt(gs.avg_bytes_per_wave, 0), ref.paper,
               report::fmt(gs.line_factor, 2),
               std::to_string(plan.launches())});
  }
  t.render(std::cout);

  std::cout << "\nReuse-profile gather factors (miss traffic / unique "
               "footprint) by cache size:\n";
  report::Table rt({"strategy", "64KB", "1MB", "16MB", "256MB"});
  for (Strategy s : kMgcfdStrategies) {
    const auto plan = op2::build_plan(e2n, s, 256);
    const auto gs = op2::measure_gather(e2n, 5, 8,
                                        op2::execution_order(plan), 64);
    rt.add_row({std::string(to_string(s)), report::fmt(gs.factor_at[0], 2),
                report::fmt(gs.factor_at[2], 2),
                report::fmt(gs.factor_at[4], 2),
                report::fmt(gs.factor_at[6], 2)});
  }
  rt.render(std::cout);
  std::cout << "\nOrdering (atomics < hierarchical < global) matches the "
               "paper; magnitudes depend on\nthe synthetic mesh's degree "
               "and the modeled cache (see EXPERIMENTS.md).\n";
  return 0;
}
