// Figure 8 reproduction: MG-CFD (Rotor37-scale) runtimes on the three
// GPU architectures across compilers and race-resolution strategies.
// Note the paper's observations encoded and verified here: no native
// version exists on the Max 1100; OpenSYCL cannot reach the MI250X's
// unsafe atomics; atomics throughput limits the Max 1100.

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::mgcfd_figure(std::cout, runner,
                      {PlatformId::A100, PlatformId::MI250X,
                       PlatformId::Max1100},
                      "Figure 8: MG-CFD (Rotor37) on GPU architectures",
                      "fig8_mgcfd_gpu");
  return 0;
}
