#pragma once
/// \file statistics.hpp
/// Small statistics helpers used by the study aggregation layer:
/// arithmetic/harmonic/geometric means, sample standard deviation, and
/// weighted averages (the paper weight-averages effective bandwidth
/// over kernels by time, §4.3).

#include <cstddef>
#include <span>

namespace syclport::stats {

/// Arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (N-1 denominator); returns 0 when N < 2.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Harmonic mean; returns 0 if the span is empty or any element is <= 0.
[[nodiscard]] double harmonic_mean(std::span<const double> xs) noexcept;

/// Geometric mean; returns 0 if the span is empty or any element is <= 0.
[[nodiscard]] double geometric_mean(std::span<const double> xs) noexcept;

/// Weighted arithmetic mean of `xs` with weights `ws`; spans must have
/// equal size. Returns 0 when the total weight is <= 0.
[[nodiscard]] double weighted_mean(std::span<const double> xs,
                                   std::span<const double> ws) noexcept;

/// Minimum / maximum; return 0 for empty input.
[[nodiscard]] double min(std::span<const double> xs) noexcept;
[[nodiscard]] double max(std::span<const double> xs) noexcept;

/// Median (by copy + nth_element); returns 0 for empty input.
[[nodiscard]] double median(std::span<const double> xs);

/// The p-th percentile of `xs` (p in [0, 100]), linearly interpolated
/// between order statistics (the "linear" / type-7 definition, so
/// percentile(xs, 50) == median and percentile(xs, 100) == max).
/// Returns 0 for empty input; p is clamped to [0, 100]. The study
/// service and launch_log tail-latency summaries (p50/p95/p99) are
/// built on this.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

}  // namespace syclport::stats
