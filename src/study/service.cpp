#include "study/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/crc32.hpp"
#include "core/statistics.hpp"
#include "runtime/autotune/fingerprint.hpp"
#include "runtime/env.hpp"
#include "runtime/fault/checkpoint.hpp"
#include "runtime/fault/fault.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/launch_log.hpp"

namespace syclport::study {

namespace {

namespace fault = rt::fault;

constexpr int kServiceCacheVersion = 1;

[[nodiscard]] std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

const char* scale_name(StudyRequest::Scale s) {
  return s == StudyRequest::Scale::Paper ? "paper" : "bench";
}

/// Extract `"field": "..."` from one line (the tuning-cache parsing
/// idiom: flat line-oriented JSON, no JSON library in the runtime).
[[nodiscard]] std::optional<std::string> quoted_field(const std::string& line,
                                                      std::string_view field) {
  std::string probe = "\"";
  probe += field;
  probe += "\": \"";
  const auto at = line.find(probe);
  if (at == std::string::npos) return std::nullopt;
  const auto begin = at + probe.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

[[nodiscard]] std::string to_hex(const std::vector<unsigned char>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

[[nodiscard]] std::optional<std::vector<unsigned char>> from_hex(
    const std::string& text) {
  if (text.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::vector<unsigned char> out(text.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = nibble(text[2 * i]), lo = nibble(text[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out[i] = static_cast<unsigned char>(hi << 4 | lo);
  }
  return out;
}

/// On-disk image of the result cache: the tuning-cache file idiom
/// (version + fingerprint + semantic-content CRC + one entry per line),
/// published through the checkpoint layer's atomic-rename path.
struct CacheFile {
  std::string fingerprint;
  std::vector<std::pair<std::string, std::vector<unsigned char>>> entries;
};

[[nodiscard]] std::uint32_t cache_content_crc(const CacheFile& f) {
  std::uint32_t c =
      crc32_update(0, f.fingerprint.data(), f.fingerprint.size());
  for (const auto& [key, blob] : f.entries) {
    c = crc32_update(c, key.data(), key.size());
    c = crc32_update(c, "=", 1);
    c = crc32_update(c, blob.data(), blob.size());
    c = crc32_update(c, "\n", 1);
  }
  return c;
}

bool write_cache_file(const std::string& path, const CacheFile& f) {
  std::ostringstream out;
  out << "{ \"syclport_service_cache\": " << kServiceCacheVersion << ",\n";
  out << "  \"fingerprint\": \"" << f.fingerprint << "\",\n";
  out << "  \"crc\": \"" << crc_hex(cache_content_crc(f)) << "\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < f.entries.size(); ++i) {
    out << "    { \"key\": \"" << f.entries[i].first << "\", \"blob\": \""
        << to_hex(f.entries[i].second) << "\" }"
        << (i + 1 < f.entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return fault::write_file_atomic(path, out.str());
}

std::optional<CacheFile> read_cache_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = std::move(buf).str();

  CacheFile f;
  int version = 0;
  std::optional<std::uint32_t> stored_crc;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    constexpr std::string_view version_probe = "\"syclport_service_cache\": ";
    if (const auto at = line.find(version_probe); at != std::string::npos) {
      version = std::atoi(line.c_str() + at + version_probe.size());
      continue;
    }
    if (auto crc = quoted_field(line, "crc")) {
      std::uint32_t v = 0;
      if (std::sscanf(crc->c_str(), "%8x", &v) == 1) stored_crc = v;
      continue;
    }
    if (auto fp = quoted_field(line, "fingerprint")) {
      f.fingerprint = std::move(*fp);
      continue;
    }
    const auto key = quoted_field(line, "key");
    if (!key) continue;
    const auto hex = quoted_field(line, "blob");
    if (!hex) continue;
    if (auto blob = from_hex(*hex))
      f.entries.emplace_back(std::move(*key), std::move(*blob));
  }
  // Reject anything that is not a well-formed current-version image
  // with a matching content checksum - the caller recomputes (always
  // safe) instead of trusting a torn or tampered file.
  if (version != kServiceCacheVersion || !stored_crc ||
      *stored_crc != cache_content_crc(f))
    return std::nullopt;
  return f;
}

/// The reduced problem sizes the tests/benches use (Scale::Bench).
void apply_bench_sizes(StudyRunner& r) {
  r.set_structured_size(AppId::CloverLeaf2D, {{1920, 1920, 1}, 10});
  r.set_structured_size(AppId::CloverLeaf3D, {{128, 128, 128}, 10});
  r.set_structured_size(AppId::OpenSBLI_SA, {{160, 160, 160}, 5});
  r.set_structured_size(AppId::OpenSBLI_SN, {{160, 160, 160}, 5});
  r.set_structured_size(AppId::RTM, {{320, 320, 320}, 5});
  r.set_structured_size(AppId::Acoustic, {{500, 500, 500}, 5});
  r.set_mgcfd_bench({48, 40, 32, 3, 10});
}

}  // namespace

std::string request_text(const StudyRequest& q) {
  std::string t = "app=";
  t += to_string(q.app);
  t += ";platform=";
  t += to_string(q.platform);
  t += ";model=";
  t += to_string(q.variant.model);
  t += ";toolchain=";
  t += to_string(q.variant.toolchain);
  t += ";strategy=";
  t += to_string(q.variant.strategy);
  t += ";scale=";
  t += scale_name(q.scale);
  return t;
}

std::string request_key(const StudyRequest& q) {
  const std::string text = request_text(q);
  return text + "#" + crc_hex(crc32(text.data(), text.size()));
}

const char* to_string(RequestError e) noexcept {
  switch (e) {
    case RequestError::None: return "none";
    case RequestError::Faulted: return "faulted";
    case RequestError::Internal: return "internal";
    case RequestError::Shutdown: return "shutdown";
  }
  return "?";
}

std::vector<unsigned char> encode_result(const ExperimentResult& r) {
  std::vector<unsigned char> out;
  out.reserve(4 + 7 * sizeof(double) + 4);
  out.push_back('S');
  out.push_back('R');
  out.push_back('1');
  out.push_back(static_cast<unsigned char>(r.status));
  const double fields[7] = {r.runtime_s,    r.boundary_s, r.halo_s,
                            r.useful_bytes, r.flops,      r.eff_bw_gbs,
                            r.efficiency};
  for (double v : fields) {
    unsigned char b[sizeof v];
    std::memcpy(b, &v, sizeof v);
    out.insert(out.end(), b, b + sizeof v);
  }
  const std::uint32_t crc = crc32(out.data(), out.size());
  unsigned char b[sizeof crc];
  std::memcpy(b, &crc, sizeof crc);
  out.insert(out.end(), b, b + sizeof crc);
  return out;
}

std::optional<ExperimentResult> decode_result(const unsigned char* p,
                                              std::size_t n) {
  constexpr std::size_t kSize = 4 + 7 * sizeof(double) + 4;
  if (n != kSize || p[0] != 'S' || p[1] != 'R' || p[2] != '1')
    return std::nullopt;
  std::uint32_t stored = 0;
  std::memcpy(&stored, p + n - 4, 4);
  if (crc32(p, n - 4) != stored) return std::nullopt;
  ExperimentResult r;
  if (p[3] > static_cast<unsigned char>(Status::Unsupported))
    return std::nullopt;
  r.status = static_cast<Status>(p[3]);
  double fields[7];
  std::memcpy(fields, p + 4, sizeof fields);
  r.runtime_s = fields[0];
  r.boundary_s = fields[1];
  r.halo_s = fields[2];
  r.useful_bytes = fields[3];
  r.flops = fields[4];
  r.eff_bw_gbs = fields[5];
  r.efficiency = fields[6];
  return r;
}

const ResultBlob& Ticket::wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return done_.load(std::memory_order_acquire); });
  if (error_ != RequestError::None) throw service_error(error_, error_what_);
  return *blob_;
}

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  if (const auto path = rt::env::get("SYCLPORT_SERVICE_CACHE"))
    cfg.cache_path = std::string(*path);
  if (const auto n = rt::env::get_long("SYCLPORT_SERVICE_BATCH", 1, 1 << 20))
    cfg.max_batch = static_cast<std::size_t>(*n);
  if (const auto n = rt::env::get_long("SYCLPORT_SERVICE_SPIN_US", 0, 1000000))
    cfg.spin_us = static_cast<std::size_t>(*n);
  if (const auto n = rt::env::get_long("SYCLPORT_SERVICE_RETRIES", 0, 8))
    cfg.compute_retries = static_cast<std::size_t>(*n);
  if (const auto n =
          rt::env::get_long("SYCLPORT_SERVICE_RETRY_US", 0, 1000000))
    cfg.retry_backoff_us = static_cast<std::size_t>(*n);
  return cfg;
}

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  fingerprint_ = rt::autotune::device_fingerprint();
  apply_bench_sizes(bench_runner_);
  bench_sized_ = true;
  load_cache();
  admission_ = std::thread([this] { admission_loop(); });
}

Service::~Service() { shutdown(); }

void Service::push(Node* n) noexcept {
  n->next.store(nullptr, std::memory_order_relaxed);
  Node* prev = tail_.exchange(n, std::memory_order_acq_rel);
  prev->next.store(n, std::memory_order_release);
}

Service::Node* Service::pop() noexcept {
  Node* head = head_;
  Node* next = head->next.load(std::memory_order_acquire);
  if (head == &stub_) {
    if (next == nullptr) return nullptr;
    head_ = next;
    head = next;
    next = next->next.load(std::memory_order_acquire);
  }
  if (next != nullptr) {
    head_ = next;
    return head;
  }
  if (head != tail_.load(std::memory_order_acquire))
    return nullptr;  // producer mid-push: its next link lands shortly
  push(&stub_);
  next = head->next.load(std::memory_order_acquire);
  if (next != nullptr) {
    head_ = next;
    return head;
  }
  return nullptr;
}

void Service::wake() {
  if (sleeping_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(wake_mu_);
    wake_cv_.notify_one();
  }
}

std::shared_ptr<Ticket> Service::submit(const StudyRequest& q) {
  auto t = std::make_shared<Ticket>();
  t->t_submit_ = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(stats_mu_);
    stats_.submitted += 1;
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    complete(t, nullptr, RequestError::Shutdown, "service is shut down",
             false, false, false);
    return t;
  }
  // Warm-cache fast path: a submit-time hash lookup, no queue round
  // trip, no admission latency. A refresh request skips it by design.
  if (!q.refresh) {
    const std::string key = request_key(q);
    std::lock_guard lock(cache_mu_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      const bool persistent = it->second.persistent;
      auto blob = it->second.blob;
      if (persistent) {
        std::lock_guard slock(stats_mu_);
        stats_.persistent_hits += 1;
      }
      complete(t, std::move(blob), RequestError::None, "", true, false,
               false);
      return t;
    }
  }
  Node* n = new Node;
  n->ticket = t;
  n->req = q;
  push(n);
  wake();
  return t;
}

void Service::complete(const std::shared_ptr<Ticket>& t,
                       std::shared_ptr<const ResultBlob> blob,
                       RequestError err, const std::string& err_what,
                       bool cache_hit, bool coalesced, bool computed,
                       bool stale) {
  const auto now = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(now - t->t_submit_).count();
  // Stats and telemetry are published *before* the ticket is marked
  // done: once every wait() has returned, stats() reflects every
  // completion (the soak test reads counters right after joining).
  {
    std::lock_guard lock(stats_mu_);
    stats_.completed += 1;
    stats_.computed += computed ? 1 : 0;
    stats_.coalesced += coalesced ? 1 : 0;
    stats_.cache_hits += cache_hit ? 1 : 0;
    stats_.errors += err != RequestError::None ? 1 : 0;
    latencies_ms_.push_back(latency_ms);
  }
  sycl::launch_log::instance().append_service(
      {latency_ms / 1e3, computed, coalesced, cache_hit,
       err != RequestError::None, stale});
  {
    std::lock_guard lock(t->mu_);
    t->blob_ = std::move(blob);
    t->error_ = err;
    t->error_what_ = err_what;
    t->cache_hit_ = cache_hit;
    t->coalesced_ = coalesced;
    t->stale_ = stale;
    t->latency_ms_ = latency_ms;
    t->done_.store(true, std::memory_order_release);
  }
  t->cv_.notify_all();
}

StudyRunner& Service::runner_for(StudyRequest::Scale scale) {
  return scale == StudyRequest::Scale::Paper ? paper_runner_ : bench_runner_;
}

void Service::admission_loop() {
  std::vector<Node*> round;
  while (!stop_.load(std::memory_order_acquire)) {
    if (paused_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    round.clear();
    while (round.size() < cfg_.max_batch) {
      Node* n = pop();
      if (n == nullptr) break;
      round.push_back(n);
    }
    if (!round.empty()) {
      execute_round(round);
      continue;
    }
    // Empty queue: spin briefly (back-to-back submits skip the condvar
    // wake latency, the executor idiom), then park. The timed wait
    // bounds any missed-notify window, so the loop can never wedge.
    const auto spin_until = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(cfg_.spin_us);
    bool got = false;
    while (std::chrono::steady_clock::now() < spin_until) {
      if (head_ != tail_.load(std::memory_order_acquire)) {
        got = true;
        break;
      }
      std::this_thread::yield();
    }
    if (got) continue;
    std::unique_lock lock(wake_mu_);
    sleeping_.store(true, std::memory_order_seq_cst);
    if (head_ == tail_.load(std::memory_order_acquire) &&
        !stop_.load(std::memory_order_acquire))
      wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
    sleeping_.store(false, std::memory_order_seq_cst);
  }
}

void Service::execute_round(std::vector<Node*>& nodes) {
  // Admission: coalesce duplicate keys into groups, serving any key
  // the cache filled since submit time.
  std::vector<std::unique_ptr<Group>> groups;
  std::unordered_map<std::string, Group*> by_key;
  for (Node* n : nodes) {
    const std::string key = request_key(n->req);
    if (!n->req.refresh) {
      std::lock_guard lock(cache_mu_);
      if (const auto it = cache_.find(key); it != cache_.end()) {
        auto blob = it->second.blob;
        complete(n->ticket, std::move(blob), RequestError::None, "", true,
                 false, false);
        delete n;
        continue;
      }
    }
    if (const auto it = by_key.find(key); it != by_key.end()) {
      it->second->waiters.push_back(std::move(n->ticket));
      it->second->refresh |= n->req.refresh;
    } else {
      auto g = std::make_unique<Group>();
      g->req = n->req;
      g->key = key;
      g->refresh = n->req.refresh;
      g->waiters.push_back(std::move(n->ticket));
      by_key.emplace(key, g.get());
      groups.push_back(std::move(g));
    }
    delete n;
  }
  {
    std::lock_guard lock(stats_mu_);
    stats_.batches += 1;
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, nodes.size());
  }
  nodes.clear();
  if (groups.empty()) return;

  // Serial phase: support gate, deterministic fault roll (admission
  // order), and one loop-schedule build per compatible class - the
  // batching win: every group of the class after the first reuses the
  // cached schedule.
  for (auto& g : groups) {
    g->support = SupportMatrix::paper().status(g->req.platform, g->req.app,
                                               g->req.variant);
    if (fault::armed())
      if (const auto r = fault::roll(fault::Site::ServiceFail); r.fire)
        g->inject_fault = true;
    if (g->support != Status::Ok || g->inject_fault) continue;
    try {
      StudyRunner& runner = runner_for(g->req.scale);
      std::lock_guard lock(runner_mu_);
      const std::size_t before = runner.schedule_count();
      g->profiles = runner.schedule_for(g->req.app, g->req.variant);
      if (runner.schedule_count() != before) {
        std::lock_guard slock(stats_mu_);
        stats_.schedule_builds += 1;
      }
    } catch (const fault::fault_injected_error& e) {
      g->err = RequestError::Faulted;
      g->err_what = e.what();
    } catch (const std::exception& e) {
      g->err = RequestError::Internal;
      g->err_what = e.what();
    }
  }

  // Parallel phase: shard the pure per-cell aggregation across the
  // work-stealing executor (inline for a single group).
  if (groups.size() == 1) {
    compute_group(*groups.front());
  } else {
    rt::ThreadPool::global().run_chunks(
        groups.size(), [&](std::size_t i) { compute_group(*groups[i]); });
  }

  // Degraded mode, stage 1: retry faulted groups with bounded backoff
  // (serial: retries are the rare path, and the fault roll order stays
  // deterministic in admission order).
  for (auto& g : groups)
    if (g->err == RequestError::Faulted) retry_faulted(*g);

  // Completion: publish blobs to the content-addressed cache (errors
  // are never cached) and release every waiter - the first waiter of a
  // group is the compute it rode, the rest are coalesced.
  for (auto& g : groups) {
    if (g->err == RequestError::None) {
      std::lock_guard lock(cache_mu_);
      if (g->refresh)
        cache_[g->key] = CachedResult{g->blob, false};  // refresh overwrites
      else
        cache_.emplace(g->key, CachedResult{g->blob, false});
    } else if (g->err == RequestError::Faulted) {
      // Degraded mode, stage 2: the retries were lost too. If the cache
      // holds a previous good result for this key, serve it flagged
      // stale instead of a hard error - the session keeps a usable
      // answer while the fault clears (docs/service.md).
      std::shared_ptr<const ResultBlob> last;
      {
        std::lock_guard lock(cache_mu_);
        if (const auto it = cache_.find(g->key); it != cache_.end())
          last = it->second.blob;
      }
      if (last) {
        {
          std::lock_guard lock(stats_mu_);
          stats_.stale_served += g->waiters.size();
        }
        for (std::size_t i = 0; i < g->waiters.size(); ++i)
          complete(g->waiters[i], last, RequestError::None, "", true, i > 0,
                   false, /*stale=*/true);
        continue;
      }
    }
    for (std::size_t i = 0; i < g->waiters.size(); ++i) {
      if (g->err != RequestError::None)
        complete(g->waiters[i], nullptr, g->err, g->err_what, false, i > 0,
                 false);
      else
        complete(g->waiters[i], g->blob, RequestError::None, "", false, i > 0,
                 i == 0);
    }
  }
}

void Service::compute_group(Group& g) {
  if (g.inject_fault) {
    g.err = RequestError::Faulted;
    g.err_what = "svc.fail injected failure for key " + g.key;
    fault::note_recovered(fault::Site::ServiceFail);
    return;
  }
  if (g.err != RequestError::None) return;
  try {
    ExperimentResult r;
    if (g.support != Status::Ok)
      r.status = g.support;
    else
      r = aggregate_cell(g.profiles, g.req.app, g.req.platform, g.req.variant);
    auto blob = std::make_shared<ResultBlob>();
    blob->result = r;
    blob->bytes = encode_result(r);
    g.blob = std::move(blob);
  } catch (const fault::fault_injected_error& e) {
    g.err = RequestError::Faulted;
    g.err_what = e.what();
  } catch (const std::exception& e) {
    g.err = RequestError::Internal;
    g.err_what = e.what();
  }
}

void Service::retry_faulted(Group& g) {
  for (std::size_t attempt = 1;
       g.err == RequestError::Faulted && attempt <= cfg_.compute_retries;
       ++attempt) {
    {
      std::lock_guard lock(stats_mu_);
      stats_.retries += 1;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.retry_backoff_us * attempt));
    g.err = RequestError::None;
    g.err_what.clear();
    g.inject_fault = false;
    // Re-roll the fault site: the occurrence advances, so a capped or
    // probabilistic plan can clear and the retry genuinely succeed.
    if (fault::armed())
      if (const auto r = fault::roll(fault::Site::ServiceFail); r.fire)
        g.inject_fault = true;
    if (!g.inject_fault && g.support == Status::Ok && g.profiles.empty()) {
      // The original fault may have preempted the schedule build.
      try {
        StudyRunner& runner = runner_for(g.req.scale);
        std::lock_guard lock(runner_mu_);
        g.profiles = runner.schedule_for(g.req.app, g.req.variant);
      } catch (const fault::fault_injected_error& e) {
        g.err = RequestError::Faulted;
        g.err_what = e.what();
        continue;
      } catch (const std::exception& e) {
        g.err = RequestError::Internal;
        g.err_what = e.what();
        continue;
      }
    }
    compute_group(g);
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  std::vector<double> lat;
  {
    std::lock_guard lock(stats_mu_);
    s = stats_;
    lat = latencies_ms_;
  }
  if (!lat.empty()) {
    double sum = 0.0;
    for (double v : lat) sum += v;
    s.mean_ms = sum / static_cast<double>(lat.size());
    s.p50_ms = stats::percentile(lat, 50.0);
    s.p95_ms = stats::percentile(lat, 95.0);
    s.p99_ms = stats::percentile(lat, 99.0);
  }
  return s;
}

void Service::load_cache() {
  if (cfg_.cache_path.empty()) return;
  const auto file = read_cache_file(cfg_.cache_path);
  // A fingerprint mismatch is a valid image for some other machine:
  // treated as cold, and save_cache() preserves nothing from it (the
  // study results are modeled, but the fingerprint gate keeps the
  // cache semantics identical to the tuning cache's).
  if (!file || file->fingerprint != fingerprint_) return;
  std::lock_guard lock(cache_mu_);
  for (const auto& [key, bytes] : file->entries) {
    const auto r = decode_result(bytes.data(), bytes.size());
    if (!r) continue;  // damaged entry: recompute rather than trust it
    auto blob = std::make_shared<ResultBlob>();
    blob->result = *r;
    blob->bytes = bytes;
    cache_.emplace(key, CachedResult{std::move(blob), true});
  }
}

bool Service::save_cache() {
  if (cfg_.cache_path.empty()) return false;
  CacheFile f;
  f.fingerprint = fingerprint_;
  {
    std::lock_guard lock(cache_mu_);
    f.entries.reserve(cache_.size());
    for (const auto& [key, cached] : cache_)
      f.entries.emplace_back(key, cached.blob->bytes);
  }
  std::sort(f.entries.begin(), f.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Merge-on-load: keep keys another writer persisted since our load,
  // then publish the union atomically (unique temp + rename) - the
  // same concurrent-rewrite contract as the tuning cache.
  if (const auto existing = read_cache_file(cfg_.cache_path);
      existing && existing->fingerprint == fingerprint_) {
    for (const auto& e : existing->entries) {
      const bool have = std::any_of(
          f.entries.begin(), f.entries.end(),
          [&](const auto& mine) { return mine.first == e.first; });
      if (!have && decode_result(e.second.data(), e.second.size()))
        f.entries.push_back(e);
    }
  }
  return write_cache_file(cfg_.cache_path, f);
}

void Service::resume_admission() {
  paused_.store(false, std::memory_order_release);
  wake();
}

void Service::shutdown() {
  if (!accepting_.exchange(false, std::memory_order_acq_rel)) return;
  paused_.store(false, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(wake_mu_);
    wake_cv_.notify_one();
  }
  if (admission_.joinable()) admission_.join();
  // Fail whatever the admission loop never drained with a typed error;
  // the queue is single-consumer and the consumer is gone, so this
  // thread owns it now.
  for (Node* n = pop(); n != nullptr; n = pop()) {
    complete(n->ticket, nullptr, RequestError::Shutdown,
             "service shut down before the request was served", false, false,
             false);
    delete n;
  }
  save_cache();
}

}  // namespace syclport::study
