#pragma once
/// \file study.hpp
/// The study harness: reproduces the paper's experiment matrix. For a
/// given (application, platform, variant) cell it
///   1. consults the SupportMatrix (failed cells stay failed, §4.2-4.3);
///   2. obtains the application's loop schedule - a ModelOnly run at
///      the paper's problem size for structured apps, or at bench scale
///      with analytic scaling for MG-CFD (DESIGN.md §2);
///   3. models every loop with DeviceModel, adds MPI halo costs, and
///      aggregates runtime, effective bandwidth and architectural
///      efficiency exactly as the paper defines them.
/// Schedules are cached: they depend only on (app, backend family,
/// strategy), not on the platform.

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/support.hpp"
#include "core/types.hpp"
#include "hwmodel/device_model.hpp"

namespace syclport::study {

/// Aggregated modeled outcome of one experiment cell.
struct ExperimentResult {
  Status status = Status::Ok;
  double runtime_s = 0.0;        ///< modeled wall time, paper problem size
  double boundary_s = 0.0;       ///< time in Boundary-class kernels
  double halo_s = 0.0;           ///< MPI halo-exchange time
  double useful_bytes = 0.0;     ///< OPS/OP2 transfer (efficiency numerator)
  double flops = 0.0;            ///< total floating-point operations
  double eff_bw_gbs = 0.0;       ///< useful_bytes / runtime
  double efficiency = 0.0;       ///< eff_bw / STREAM bw (paper's metric)

  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// Variant lists per figure (paper's bar groups).
[[nodiscard]] std::vector<Variant> structured_variants(PlatformId p);
[[nodiscard]] std::vector<Variant> mgcfd_variants(PlatformId p);

/// The "native" baseline variant of a platform (CUDA/HIP on GPUs,
/// OpenMP offload on the Max 1100, pure MPI on CPUs).
[[nodiscard]] Variant native_variant(PlatformId p);

/// Scale a bench-mesh MG-CFD loop schedule to the paper's 8M-vertex
/// Rotor37: traffic, flops and atomic counts scale linearly; the
/// measured gather reuse profile is re-sampled at cache/scale (a cache
/// holds 1/scale of the scaled working set). StudyRunner applies this
/// to its cached schedules; ablation_layout uses it directly on
/// schedules recorded under non-default (ordering, layout, strategy).
void scale_mgcfd_profiles(std::vector<hw::LoopProfile>& profiles,
                          const apps::MgcfdConfig& cfg);

/// Aggregate one experiment cell from an already-obtained loop
/// schedule: the pure tail of StudyRunner::run. A thread-safe function
/// of its arguments (DeviceModel and the platform tables are
/// read-only), so the study service shards batches of cells across the
/// work-stealing executor once the schedules are in hand. Does NOT
/// consult the SupportMatrix - the caller gates on it.
[[nodiscard]] ExperimentResult aggregate_cell(
    std::span<const hw::LoopProfile> profiles, AppId app, PlatformId platform,
    const Variant& v);

class StudyRunner {
 public:
  StudyRunner() = default;

  /// Model one experiment cell at the paper's problem size.
  [[nodiscard]] ExperimentResult run(AppId app, PlatformId platform,
                                     const Variant& v);

  /// Override problem sizes (for fast tests); defaults to paper sizes.
  void set_structured_size(AppId app, apps::ProblemSize ps);
  void set_mgcfd_bench(apps::MgcfdConfig cfg) { mgcfd_cfg_ = cfg; }

  /// The cached loop schedule used for (app, v): exposed for trace
  /// emission and analysis tools.
  [[nodiscard]] const std::vector<hw::LoopProfile>& schedule_for(
      AppId app, const Variant& v) {
    return schedule(app, v);
  }

  /// Number of distinct schedule classes built so far (the service
  /// counts cold builds per admission round with this).
  [[nodiscard]] std::size_t schedule_count() const {
    return schedules_.size();
  }

 private:
  struct ScheduleKey {
    AppId app;
    bool mpi;         ///< MPI-family backend (halo recording on)
    Strategy strategy;///< MG-CFD only
    auto operator<=>(const ScheduleKey&) const = default;
  };

  /// The cached loop schedule (profiles for the full run).
  const std::vector<hw::LoopProfile>& schedule(AppId app, const Variant& v);

  [[nodiscard]] apps::ProblemSize size_for(AppId app) const;

  std::map<ScheduleKey, std::vector<hw::LoopProfile>> schedules_;
  std::map<AppId, apps::ProblemSize> size_override_;
  apps::MgcfdConfig mgcfd_cfg_ = apps::mgcfd_bench();
};

}  // namespace syclport::study
