// Figure 5 reproduction: runtime of the six structured-mesh
// applications on the Xeon8360Y platform across programming-model
// variants (see DESIGN.md experiment index).

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::structured_figure(
      std::cout, runner, PlatformId::Xeon8360Y,
      "Figure 5: structured-mesh runtimes, " +
          std::string(to_string(PlatformId::Xeon8360Y)),
      "fig5_structured_xeon");
  return 0;
}
