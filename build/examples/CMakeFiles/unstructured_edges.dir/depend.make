# Empty dependencies file for unstructured_edges.
# This may be replaced when dependencies are built.
