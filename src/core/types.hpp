#pragma once
/// \file types.hpp
/// Core vocabulary types shared by every subsystem of syclport: the
/// applications, hardware platforms, programming models, toolchains and
/// race-resolution strategies that span the study reproduced from
/// Reguly, "Evaluating the performance portability of SYCL across CPUs
/// and GPUs on bandwidth-bound applications" (SC-W 2023).

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace syclport {

/// Benchmarked applications (paper §3).
enum class AppId : std::uint8_t {
  CloverLeaf2D,  ///< 2D structured-mesh Eulerian hydrodynamics, FP64
  CloverLeaf3D,  ///< 3D variant, FP64
  OpenSBLI_SA,   ///< Navier-Stokes finite difference, Store-All, FP64
  OpenSBLI_SN,   ///< Navier-Stokes finite difference, Store-None, FP64
  RTM,           ///< Reverse Time Migration forward pass, 8th order, FP32
  Acoustic,      ///< High-order acoustic wave propagation, FP32
  MGCFD,         ///< Unstructured finite-volume Euler + multigrid, FP64
};

inline constexpr std::array kAllApps = {
    AppId::CloverLeaf2D, AppId::CloverLeaf3D, AppId::OpenSBLI_SA,
    AppId::OpenSBLI_SN,  AppId::RTM,          AppId::Acoustic,
    AppId::MGCFD};

inline constexpr std::array kStructuredApps = {
    AppId::CloverLeaf2D, AppId::CloverLeaf3D, AppId::OpenSBLI_SA,
    AppId::OpenSBLI_SN,  AppId::RTM,          AppId::Acoustic};

/// Hardware platforms (paper §2, Table 1).
enum class PlatformId : std::uint8_t {
  A100,     ///< NVIDIA A100 40GB PCIe
  MI250X,   ///< AMD MI250X, single GCD
  Max1100,  ///< Intel Data Center GPU Max 1100
  Xeon8360Y,///< Intel Xeon Platinum 8360Y, dual socket (Ice Lake)
  GenoaX,   ///< AMD EPYC 9V33X dual socket (Genoa-X, 3D V-Cache)
  Altra,    ///< Ampere Altra, single socket (ARM Neoverse N1)
};

inline constexpr std::array kAllPlatforms = {
    PlatformId::A100,      PlatformId::MI250X, PlatformId::Max1100,
    PlatformId::Xeon8360Y, PlatformId::GenoaX, PlatformId::Altra};

inline constexpr std::array kGpuPlatforms = {
    PlatformId::A100, PlatformId::MI250X, PlatformId::Max1100};

inline constexpr std::array kCpuPlatforms = {
    PlatformId::Xeon8360Y, PlatformId::GenoaX, PlatformId::Altra};

/// Parallel programming models evaluated in the study.
enum class Model : std::uint8_t {
  MPI,           ///< pure MPI (CPU baseline)
  MPI_OpenMP,    ///< hybrid MPI + OpenMP (CPU baseline)
  OpenMP,        ///< plain OpenMP, used on single-NUMA CPUs (Altra)
  CUDA,          ///< native CUDA (A100 baseline)
  HIP,           ///< native HIP (MI250X baseline)
  OpenMPOffload, ///< OpenMP target offload ("native" on Max 1100)
  SYCLFlat,      ///< SYCL parallel_for(range) - runtime picks work-group
  SYCLNDRange,   ///< SYCL parallel_for(nd_range) - tuned work-group
};

/// Compiler toolchains the study covers.
enum class Toolchain : std::uint8_t {
  Native,   ///< vendor compiler for the native model (nvcc/hipcc/icx/aocc/gcc)
  DPCPP,    ///< Intel oneAPI DPC++/C++ compiler
  OpenSYCL, ///< OpenSYCL (formerly hipSYCL)
  Cray,     ///< Cray CCE (OpenMP offload bars on the MI250X plots)
};

/// Race-resolution strategies for unstructured-mesh indirect increments
/// (paper §3, Figure 1).
enum class Strategy : std::uint8_t {
  None,         ///< no indirect increments (structured-mesh apps)
  Atomics,      ///< per-increment atomic operations
  GlobalColor,  ///< global edge colouring, one parallel sweep per colour
  Hierarchical, ///< blocks coloured globally, edges coloured within blocks
  Staged,       ///< gather to scratch tiles, sweep, ordered scatter-back
};

inline constexpr std::array kMgcfdStrategies = {
    Strategy::Atomics, Strategy::GlobalColor, Strategy::Hierarchical};

/// A programming-model variant: the (model, toolchain) pair that labels
/// one bar group in the paper's figures, plus the race-resolution
/// strategy for unstructured applications.
struct Variant {
  Model model = Model::MPI;
  Toolchain toolchain = Toolchain::Native;
  Strategy strategy = Strategy::None;

  [[nodiscard]] constexpr bool is_sycl() const noexcept {
    return model == Model::SYCLFlat || model == Model::SYCLNDRange;
  }
  [[nodiscard]] constexpr bool is_native() const noexcept { return !is_sycl(); }
  [[nodiscard]] constexpr bool uses_mpi() const noexcept {
    return model == Model::MPI || model == Model::MPI_OpenMP;
  }
  friend constexpr bool operator==(const Variant&, const Variant&) = default;
  friend constexpr auto operator<=>(const Variant&, const Variant&) = default;
};

[[nodiscard]] std::string_view to_string(AppId a);
[[nodiscard]] std::string_view to_string(PlatformId p);
[[nodiscard]] std::string_view to_string(Model m);
[[nodiscard]] std::string_view to_string(Toolchain t);
[[nodiscard]] std::string_view to_string(Strategy s);
/// Human-readable variant label matching the paper's bar labels,
/// e.g. "DPC++ nd_range", "OpenSYCL flat", "MPI+OpenMP", "CUDA".
[[nodiscard]] std::string to_string(const Variant& v);

[[nodiscard]] std::optional<AppId> parse_app(std::string_view name);
[[nodiscard]] std::optional<PlatformId> parse_platform(std::string_view name);

/// True when the platform is a GPU.
[[nodiscard]] constexpr bool is_gpu(PlatformId p) noexcept {
  return p == PlatformId::A100 || p == PlatformId::MI250X ||
         p == PlatformId::Max1100;
}

/// True when the application is a structured-mesh (OPS) code.
[[nodiscard]] constexpr bool is_structured(AppId a) noexcept {
  return a != AppId::MGCFD;
}

}  // namespace syclport
