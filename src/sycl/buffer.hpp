#pragma once
/// \file buffer.hpp
/// miniSYCL buffers and accessors. Because the executor is the host,
/// buffers reference (or own) host memory directly and accessors are
/// thin pointer+range views; SYCL copy-back semantics degenerate to
/// no-ops while the API shape is preserved.
///
/// What is *not* a no-op anymore: constructing an accessor inside a
/// command group registers (base pointer, access_mode) with the
/// handler, which is how the out-of-order queue derives its dependency
/// DAG; and buffer destruction / host_accessor construction are host
/// synchronization points that block until no in-flight command still
/// references the storage (SYCL 2020 buffer semantics).
///
/// Owned storage comes from the rt::mem subsystem, not std::vector:
/// allocation is pooled and *lazily initialized*. The zero fill that
/// SYCL requires happens at the first accessor that could observe it -
/// in parallel, with streaming stores, first-touched by the pool
/// workers - and is skipped entirely when that first accessor is
/// `write_only, no_init` (access_mode::discard_write), in which case
/// the kernel's own writes place the pages.

#include <cstddef>
#include <memory>
#include <mutex>

#include "runtime/mem/mem.hpp"
#include "sycl/access.hpp"
#include "sycl/detail/scheduler.hpp"
#include "sycl/handler.hpp"
#include "sycl/range.hpp"

namespace sycl {
namespace detail {

/// Shared owned-buffer backing store: a pooled, initially-untouched
/// allocation plus a once-flag deciding how it gets initialized. All
/// copies of a buffer share one of these.
class buffer_storage {
 public:
  explicit buffer_storage(std::size_t bytes)
      : ptr_(syclport::rt::mem::alloc(bytes, syclport::rt::mem::Init::None)),
        bytes_(bytes) {}

  ~buffer_storage() { syclport::rt::mem::dealloc(ptr_); }

  buffer_storage(const buffer_storage&) = delete;
  buffer_storage& operator=(const buffer_storage&) = delete;

  [[nodiscard]] void* ptr() const noexcept { return ptr_; }

  /// Zero the storage if nothing has initialized it yet (parallel
  /// streaming zero; the fill is also the first touch).
  void ensure_zeroed() {
    std::call_once(init_, [this] {
      syclport::rt::mem::zero_fill(ptr_, bytes_);
    });
  }

  /// Declare the storage initialized without touching it - the
  /// discard_write path, where the first kernel overwrites everything
  /// it will ever read.
  void mark_initialized() {
    std::call_once(init_, [] {});
  }

 private:
  void* ptr_;
  std::size_t bytes_;
  std::once_flag init_;
};

}  // namespace detail

template <typename T, int Dims = 1>
class buffer {
 public:
  /// Buffer over existing host memory (no copy; writes are visible
  /// immediately, equivalent to a same-context host buffer).
  buffer(T* host_data, range<Dims> r) : data_(host_data), range_(r) {}

  /// Buffer owning storage that reads as zero. The allocation is
  /// pooled and untouched here; the zero materializes at the first
  /// accessor that could read it (and never, for discard_write).
  explicit buffer(range<Dims> r)
      : owned_(std::make_shared<detail::buffer_storage>(r.size() * sizeof(T))),
        data_(static_cast<T*>(owned_->ptr())),
        range_(r) {}

  buffer(const buffer&) = default;
  buffer& operator=(const buffer&) = default;

  /// Destruction waits for every in-flight command that accesses this
  /// buffer's storage - the point where SYCL guarantees writes are
  /// visible to the host.
  ~buffer() {
    if (data_ != nullptr) detail::sync_host_access(data_);
  }

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] std::size_t size() const { return range_.size(); }
  [[nodiscard]] std::size_t byte_size() const { return size() * sizeof(T); }

  /// Host escape hatch to the storage. Materializes the zero fill
  /// first so callers see the documented zero-initialized contents.
  [[nodiscard]] T* data() const {
    ensure_initialized();
    return data_;
  }

  /// Internal (accessor) entry points -------------------------------
  /// Raw pointer with no initialization side effect.
  [[nodiscard]] T* device_ptr() const noexcept { return data_; }
  /// Force the zero fill (any accessor that may read or partially
  /// write).
  void ensure_initialized() const {
    if (owned_) owned_->ensure_zeroed();
  }
  /// Suppress the zero fill forever (first accessor is discard_write).
  void mark_initialized() const {
    if (owned_) owned_->mark_initialized();
  }

 private:
  std::shared_ptr<detail::buffer_storage> owned_;  ///< null when wrapping
  T* data_ = nullptr;
  range<Dims> range_;
};

template <typename T, int Dims = 1>
class accessor {
 public:
  accessor(buffer<T, Dims>& buf, handler& h, read_only_tag)
      : accessor(buf, h, access_mode::read) {}
  accessor(buffer<T, Dims>& buf, handler& h, write_only_tag)
      : accessor(buf, h, access_mode::write) {}
  /// SYCL 2020 `sycl::write_only, sycl::no_init`: the kernel promises
  /// to overwrite everything it reads, so the buffer's lazy zero fill
  /// is skipped and the footprint registers as discard_write.
  accessor(buffer<T, Dims>& buf, handler& h, write_only_tag, no_init_tag)
      : accessor(buf, h, access_mode::discard_write) {}

  accessor(buffer<T, Dims>& buf, handler& h, read_write_tag = {})
      : accessor(buf, h, access_mode::read_write) {}

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data_[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data_[i];
  }

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] access_mode mode() const { return mode_; }
  [[nodiscard]] T* get_pointer() const { return data_; }

 private:
  accessor(buffer<T, Dims>& buf, handler& h, access_mode m)
      : data_(buf.device_ptr()), range_(buf.get_range()), mode_(m) {
    // A plain `write` accessor may cover only part of the range, so the
    // unwritten remainder must still read as zero; only discard_write
    // may skip the fill.
    if (m == access_mode::discard_write)
      buf.mark_initialized();
    else
      buf.ensure_initialized();
    h.require(static_cast<const void*>(data_), mode_);
  }

  T* data_;
  range<Dims> range_;
  access_mode mode_;
};

/// Host-side accessor (outside command groups). Construction is a
/// synchronization point: it blocks until no in-flight command still
/// references the buffer's storage.
template <typename T, int Dims = 1>
class host_accessor {
 public:
  explicit host_accessor(buffer<T, Dims>& buf)
      : data_(buf.device_ptr()), range_(buf.get_range()) {
    buf.ensure_initialized();
    detail::sync_host_access(data_);
  }

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data_[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data_[i];
  }

 private:
  T* data_;
  range<Dims> range_;
};

}  // namespace sycl
