# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("runtime")
subdirs("sycl")
subdirs("hwmodel")
subdirs("minimpi")
subdirs("ops")
subdirs("op2")
subdirs("stream")
subdirs("apps")
subdirs("study")
subdirs("tools")
