// Table 1 reproduction: BabelStream Triad achieved bandwidth on all six
// platforms, modeled from the DSL-recorded kernel schedule with each
// platform's native programming model (the paper compiles BabelStream
// "with the native parallelizations and compilers").

#include <iostream>

#include "common/figures.hpp"
#include "common/paper_data.hpp"
#include "core/report.hpp"
#include "hwmodel/device_model.hpp"
#include "stream/babelstream.hpp"

using namespace syclport;

int main() {
  std::cout << "=== Table 1: BabelStream Triad achieved bandwidth ===\n\n";

  // Arrays sized well past every cache (2^28 doubles = 2 GiB each) so
  // no platform reports cache bandwidth, as in the real measurement.
  const std::size_t n = 1u << 28;
  ops::Options o;
  o.mode = ops::Mode::ModelOnly;
  const auto rs = stream::run(o, n, 1);

  report::Table t({"platform", "kernel", "modeled GB/s", "paper GB/s",
                   "delta"});
  report::Table csv({"platform", "kernel", "modeled_gbs", "paper_gbs"});

  for (PlatformId p : kAllPlatforms) {
    // "Native" for BabelStream: the vendor-recommended model - on the
    // Max 1100 that is SYCL itself, not OpenMP offload.
    const Variant v = p == PlatformId::Max1100
                          ? Variant{Model::SYCLNDRange, Toolchain::DPCPP}
                          : study::native_variant(p);
    const hw::DeviceModel dm(p, v, AppId::CloverLeaf2D);
    for (const auto& lp : rs.profiles) {
      const auto kt = dm.kernel_time(lp);
      const double gbs = lp.total_bytes() / kt.seconds / 1e9;
      const bool triad = lp.name == "stream_triad";
      const double paper = bench::paper_stream_bw(p);
      if (triad) {
        t.add_row({std::string(to_string(p)), lp.name, report::fmt(gbs, 0),
                   report::fmt(paper, 0), bench::pct_delta(gbs, paper)});
      }
      csv.add_row({std::string(to_string(p)), lp.name, report::fmt(gbs, 1),
                   triad ? report::fmt(paper, 0) : "-"});
    }
  }
  t.render(std::cout);
  csv.save_csv("table1_babelstream.csv");
  std::cout << "\n[full five-kernel data in table1_babelstream.csv]\n";
  return 0;
}
