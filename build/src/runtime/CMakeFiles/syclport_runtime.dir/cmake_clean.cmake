file(REMOVE_RECURSE
  "CMakeFiles/syclport_runtime.dir/fiber.cpp.o"
  "CMakeFiles/syclport_runtime.dir/fiber.cpp.o.d"
  "CMakeFiles/syclport_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/syclport_runtime.dir/thread_pool.cpp.o.d"
  "libsyclport_runtime.a"
  "libsyclport_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syclport_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
