#pragma once
/// \file comm_model.hpp
/// MPI decomposition and halo-exchange cost model. Pure-MPI runs place
/// one rank per core; hybrid MPI+OpenMP places one rank per NUMA domain
/// with threads inside. High-order stencils (RTM, Acoustic: radius 4)
/// make per-rank halo volume large at high rank counts - the mechanism
/// behind MPI+OpenMP winning RTM on Genoa-X by 1.46-1.95x (paper §4.2).

#include <array>
#include <cstddef>

#include "core/types.hpp"
#include "hwmodel/platform.hpp"

namespace syclport::hw {

/// Number of MPI ranks this variant runs with on this platform.
[[nodiscard]] int ranks_for(PlatformId p, const Variant& v);

/// Near-cubic (balanced) factorization of `ranks` over `dims` dimensions.
[[nodiscard]] std::array<int, 3> rank_grid(int ranks, int dims);

/// Per-exchange halo cost of a structured block decomposition:
/// `extent` is the global grid, `depth` the halo depth (stencil radius),
/// `elem_bytes * components` the per-point payload. Returns seconds for
/// one full halo exchange (all ranks exchange concurrently; the cost is
/// the busiest rank's, plus per-message latency).
[[nodiscard]] double halo_exchange_time_s(const Platform& hw, int ranks,
                                          int dims,
                                          const std::array<std::size_t, 3>& extent,
                                          int depth, std::size_t point_bytes);

/// Per-message latency and effective intra-node exchange bandwidth.
struct CommParams {
  double latency_us = 0.9;
  double bw_fraction = 0.35;  ///< of STREAM bandwidth, both copies counted
};
[[nodiscard]] CommParams comm_params(const Platform& hw);

}  // namespace syclport::hw
