file(REMOVE_RECURSE
  "CMakeFiles/ablation_storenone.dir/ablation_storenone.cpp.o"
  "CMakeFiles/ablation_storenone.dir/ablation_storenone.cpp.o.d"
  "ablation_storenone"
  "ablation_storenone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storenone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
