// Figure 10 reproduction: achieved architectural efficiency of every
// (platform, variant) combination on the structured-mesh applications,
// plus the §4.4 aggregate averages the paper quotes.

#include <iostream>
#include <vector>

#include "common/figures.hpp"
#include "common/paper_data.hpp"
#include "core/report.hpp"
#include "core/statistics.hpp"

using namespace syclport;

namespace {

/// Mean/stddev of a variant's efficiency over all apps x platforms
/// where it ran correctly.
std::pair<double, double> variant_stats(study::StudyRunner& runner,
                                        const Variant& v) {
  std::vector<double> effs;
  for (PlatformId p : kAllPlatforms) {
    const auto vars = study::structured_variants(p);
    bool present = false;
    for (const auto& pv : vars)
      if (pv.model == v.model && pv.toolchain == v.toolchain) present = true;
    if (!present) continue;
    for (AppId a : kStructuredApps) {
      const auto r = runner.run(a, p, v);
      if (r.ok()) effs.push_back(r.efficiency);
    }
  }
  return {stats::mean(effs), stats::stddev(effs)};
}

std::pair<double, double> native_stats(study::StudyRunner& runner) {
  std::vector<double> effs;
  for (PlatformId p : kAllPlatforms) {
    for (const Variant& v : study::structured_variants(p)) {
      if (v.is_sycl()) continue;
      for (AppId a : kStructuredApps) {
        const auto r = runner.run(a, p, v);
        if (r.ok()) effs.push_back(r.efficiency);
      }
    }
  }
  return {stats::mean(effs), stats::stddev(effs)};
}

}  // namespace

int main() {
  study::StudyRunner runner;
  bench::efficiency_matrix(std::cout, runner, /*unstructured=*/false,
                           "Figure 10: architectural efficiency, structured",
                           "fig10_pp_structured");

  const bench::PaperAggregates paper;
  report::Table t({"variant family", "modeled mean (std)", "paper mean (std)"});
  auto row = [&](const char* name, std::pair<double, double> m, double pm,
                 double ps) {
    t.add_row({name,
               report::fmt_percent(m.first) + " (" +
                   report::fmt_percent(m.second) + ")",
               report::fmt_percent(pm) + " (" + report::fmt_percent(ps) + ")"});
  };
  row("native (all)", native_stats(runner), paper.native_structured_avg, 0.21);
  row("DPC++ nd_range",
      variant_stats(runner, {Model::SYCLNDRange, Toolchain::DPCPP}),
      paper.dpcpp_nd_avg, 0.19);
  row("OpenSYCL nd_range",
      variant_stats(runner, {Model::SYCLNDRange, Toolchain::OpenSYCL}),
      paper.osycl_nd_avg, 0.21);
  row("DPC++ flat",
      variant_stats(runner, {Model::SYCLFlat, Toolchain::DPCPP}),
      paper.dpcpp_flat_avg, 0.19);
  row("OpenSYCL flat",
      variant_stats(runner, {Model::SYCLFlat, Toolchain::OpenSYCL}),
      paper.osycl_flat_avg, 0.19);
  std::cout << "S4.4 aggregate efficiencies (structured apps):\n";
  t.render(std::cout);
  return 0;
}
