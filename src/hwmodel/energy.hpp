#pragma once
/// \file energy.hpp
/// Board/package energy model: a first-order extension the P3HPC
/// community commonly layers on top of runtime studies. Energy is
/// modeled as TDP-bounded power draw over the modeled runtime, with a
/// bandwidth-bound derate (memory-bound codes do not pull full TDP);
/// the derived metric is useful bytes per joule - "bandwidth
/// efficiency per watt".

#include "core/types.hpp"

namespace syclport::hw {

/// Power envelope of one platform.
struct PowerSpec {
  double tdp_w = 0.0;       ///< board/package TDP (whole-node for 2S CPUs)
  double bw_bound_frac = 1.0;///< fraction of TDP drawn by bandwidth-bound code
};

/// Vendor TDPs: A100 PCIe 250 W; MI250X 560 W per module -> 280 W/GCD;
/// Max 1100 300 W; Xeon 8360Y 250 W x2; EPYC 9V33X ~360 W x2 (custom
/// Azure SKU, Genoa-X class); Ampere Altra Q80 ~210 W.
[[nodiscard]] PowerSpec power_spec(PlatformId p);

/// Modeled energy (J) of a run of `runtime_s` on platform `p`.
[[nodiscard]] double run_energy_j(PlatformId p, double runtime_s);

/// Useful bytes moved per joule (GB/J) - the energy-side efficiency.
[[nodiscard]] double gb_per_joule(PlatformId p, double useful_bytes,
                                  double runtime_s);

}  // namespace syclport::hw
