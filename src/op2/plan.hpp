#pragma once
/// \file plan.hpp
/// OP2 execution plans: the colouring data structures that resolve
/// indirect-increment races (paper §3, Figure 1).
///  - global colouring: elements coloured so no two elements of one
///    colour share a mapped target; one parallel sweep per colour.
///  - hierarchical colouring: elements grouped into blocks of
///    consecutive ids; blocks coloured against shared targets; within
///    each block elements get intra-block colours. On GPUs a block is a
///    work-group (with barriers between intra-colours).
/// Plans are computed once per (map, strategy, block size) and cached.

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "op2/set.hpp"

namespace syclport::op2 {

struct Plan {
  Strategy strategy = Strategy::Atomics;
  std::size_t nelems = 0;

  // --- global colouring ---------------------------------------------------
  std::vector<int> colour;             ///< colour per element
  int ncolours = 0;
  /// Elements grouped by colour: elements_by_colour[c] lists ids.
  std::vector<std::vector<int>> elements_by_colour;

  // --- hierarchical colouring ----------------------------------------------
  std::size_t block_size = 0;
  std::size_t nblocks = 0;
  std::vector<int> block_colour;       ///< colour per block
  int nblock_colours = 0;
  std::vector<std::vector<int>> blocks_by_colour;
  std::vector<int> intra_colour;       ///< colour of element within its block
  int max_intra_colours = 0;

  /// Parallel sweeps this plan splits a loop into (kernel launches).
  [[nodiscard]] std::size_t launches() const {
    switch (strategy) {
      case Strategy::GlobalColor: return static_cast<std::size_t>(ncolours);
      case Strategy::Hierarchical:
        return static_cast<std::size_t>(nblock_colours);
      default: return 1;
    }
  }
};

/// Build a plan resolving conflicts through `map` (two elements conflict
/// when they share any mapped target). `block_size` is used by the
/// hierarchical strategy only.
[[nodiscard]] Plan build_plan(const Map& map, Strategy strategy,
                              std::size_t block_size = 256);

/// Verify plan invariants (used by property tests): no two same-colour
/// elements (global) or same-colour blocks (hierarchical) share a
/// target, and within a block no two same-intra-colour elements do.
[[nodiscard]] bool validate_plan(const Plan& plan, const Map& map);

}  // namespace syclport::op2
