#pragma once
/// \file dist_checkpoint.hpp
/// Canonical checkpoint/restart for distributed OPS fields
/// (docs/resilience.md "Elastic recovery").
///
/// A checkpoint written by ops::checkpoint() stores each rank's local
/// block, so it can only be restored onto the same decomposition. The
/// elastic driver needs more: after a `shrink` recovery the surviving
/// world re-partitions the grid, so its checkpoints must be
/// *decomposition-independent*. These helpers gather every owned
/// interior into one global-order array (canonical form), write it
/// through the same CRC-tagged atomic Snapshot format, and restore by
/// having every rank read the file and scatter its own box - any world
/// size can restore any world size's checkpoint, and the canonical
/// bytes double as the bit-exactness witness in the chaos tests.
///
/// All entry points are collective over the field's communicator.

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "ops/dist.hpp"
#include "runtime/fault/checkpoint.hpp"

namespace syclport::ops::dist {

/// Tag base for the gather/rebroadcast messages; chosen clear of the
/// halo (100 + ...) and op2 import/export (70/71) tag ranges.
inline constexpr int kCkptTagBase = 9100;

namespace detail {

/// Normalized global extents: unused dimensions span exactly 1, so the
/// canonical index never depends on what a caller left in global()[d]
/// past dims().
template <typename T>
[[nodiscard]] inline std::array<std::size_t, 3> canonical_extents(
    DistDat<T>& d) {
  std::array<std::size_t, 3> ext{1, 1, 1};
  for (int dim = 0; dim < d.ctx().dims(); ++dim)
    ext[static_cast<std::size_t>(dim)] =
        d.global()[static_cast<std::size_t>(dim)];
  return ext;
}

}  // namespace detail

/// Gather the owned interior of `d` into global (canonical) order on
/// every rank. Collective; the result is identical on all ranks.
template <typename T>
[[nodiscard]] std::vector<T> gather_canonical(DistDat<T>& d) {
  mpi::Comm& comm = d.ctx().comm();
  const int dims = d.ctx().dims();
  const auto ext = detail::canonical_extents(d);
  std::vector<T> canon(ext[0] * ext[1] * ext[2]);

  std::vector<T> mine;
  d.for_owned([&](std::size_t, std::size_t, std::size_t, std::ptrdiff_t li,
                  std::ptrdiff_t lj, std::ptrdiff_t lk) {
    mine.push_back(d.field().at(li, lj, lk));
  });

  if (comm.rank() == 0) {
    // Rank 0 can compute every rank's owned box from the decomposition
    // alone, so the wire carries only raw values in for_owned order.
    const auto place = [&](int r, const std::vector<T>& buf) {
      mpi::CartDecomp cart(r, comm.size(), dims);
      std::array<std::size_t, 3> lo{0, 0, 0};
      std::array<std::size_t, 3> hi{1, 1, 1};
      for (int dim = 0; dim < dims; ++dim) {
        const auto dd = static_cast<std::size_t>(dim);
        const auto [b, e] = cart.owned(dim, ext[dd]);
        lo[dd] = b;
        hi[dd] = e;
      }
      std::size_t at = 0;
      for (std::size_t i = lo[0]; i < hi[0]; ++i)
        for (std::size_t j = lo[1]; j < hi[1]; ++j)
          for (std::size_t k = lo[2]; k < hi[2]; ++k)
            canon[(i * ext[1] + j) * ext[2] + k] = buf[at++];
      if (at != buf.size())
        throw std::logic_error("gather_canonical: box/payload mismatch");
    };
    place(0, mine);
    for (int r = 1; r < comm.size(); ++r) {
      mpi::CartDecomp cart(r, comm.size(), dims);
      std::size_t count = 1;
      for (int dim = 0; dim < dims; ++dim) {
        const auto [b, e] =
            cart.owned(dim, ext[static_cast<std::size_t>(dim)]);
        count *= e - b;
      }
      std::vector<T> buf(count);
      comm.recv(r, kCkptTagBase, std::span<T>(buf));
      place(r, buf);
    }
    for (int r = 1; r < comm.size(); ++r)
      comm.send(r, kCkptTagBase + 1, std::span<const T>(canon));
  } else {
    comm.send(0, kCkptTagBase, std::span<const T>(mine));
    comm.recv(0, kCkptTagBase + 1, std::span<T>(canon));
  }
  return canon;
}

/// Scatter a canonical array back into `d`'s owned interior and refresh
/// the ghost layers. Collective.
template <typename T>
void scatter_canonical(DistDat<T>& d, const std::vector<T>& canon) {
  const auto ext = detail::canonical_extents(d);
  if (canon.size() != ext[0] * ext[1] * ext[2])
    throw std::invalid_argument(
        "scatter_canonical: array does not match the field's extents");
  d.for_owned([&](std::size_t gi, std::size_t gj, std::size_t gk,
                  std::ptrdiff_t li, std::ptrdiff_t lj, std::ptrdiff_t lk) {
    d.field().at(li, lj, lk) = canon[(gi * ext[1] + gj) * ext[2] + gk];
  });
  d.exchange_halos();
}

/// One named field of a canonical checkpoint.
template <typename T>
struct CkptField {
  std::string name;
  DistDat<T>* dat;
};

/// Write a canonical checkpoint of `fields` to `path`: gather each to
/// global order, Snapshot-save on rank 0 (atomic temp + rename), then
/// barrier so no rank proceeds before the checkpoint is durable.
template <typename T>
void checkpoint_canonical(const std::string& path,
                          const std::vector<CkptField<T>>& fields) {
  if (fields.empty())
    throw std::invalid_argument("checkpoint_canonical: no fields");
  mpi::Comm& comm = fields.front().dat->ctx().comm();
  std::vector<std::vector<T>> canon;
  canon.reserve(fields.size());
  for (const auto& f : fields) canon.push_back(gather_canonical(*f.dat));
  if (comm.rank() == 0) {
    rt::fault::Snapshot snap;
    for (std::size_t i = 0; i < fields.size(); ++i)
      snap.add(fields[i].name, canon[i].data(), canon[i].size() * sizeof(T));
    snap.save(path);
  }
  comm.barrier();
}

/// Restore `fields` from a canonical checkpoint: every rank validates
/// and reads the file independently (it is read-only here), then
/// scatters its own box - which is exactly why a world of any size can
/// restore a checkpoint written by a world of any other size.
template <typename T>
void restore_canonical(const std::string& path,
                       const std::vector<CkptField<T>>& fields) {
  if (fields.empty())
    throw std::invalid_argument("restore_canonical: no fields");
  std::vector<std::vector<T>> canon;
  canon.reserve(fields.size());
  rt::fault::Snapshot snap;
  for (const auto& f : fields) {
    const auto ext = detail::canonical_extents(*f.dat);
    canon.emplace_back(ext[0] * ext[1] * ext[2]);
    snap.add(f.name, canon.back().data(), canon.back().size() * sizeof(T));
  }
  snap.restore(path);  // all-or-nothing: throws before touching `canon`
  for (std::size_t i = 0; i < fields.size(); ++i)
    scatter_canonical(*fields[i].dat, canon[i]);
}

}  // namespace syclport::ops::dist
