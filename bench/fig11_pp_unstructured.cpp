// Figure 11 reproduction: achieved architectural efficiency of MG-CFD
// for every (platform, variant) combination, plus the §4.4 MG-CFD PP
// numbers (OpenSYCL+atomics 0.42; best-per-platform 0.67).

#include <iostream>
#include <vector>

#include "common/figures.hpp"
#include "common/paper_data.hpp"
#include "core/pp_metric.hpp"
#include "core/report.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::efficiency_matrix(std::cout, runner, /*unstructured=*/true,
                           "Figure 11: architectural efficiency, MG-CFD",
                           "fig11_pp_unstructured");

  // PP for OpenSYCL + atomics (the one combination that worked on all
  // platforms, paper S4.4).
  std::vector<double> osycl_atomics_eff;
  std::vector<double> best_eff;
  for (PlatformId p : kAllPlatforms) {
    const Variant oa{Model::SYCLNDRange, Toolchain::OpenSYCL,
                     Strategy::Atomics};
    const auto r = runner.run(AppId::MGCFD, p, oa);
    osycl_atomics_eff.push_back(r.ok() ? r.efficiency : 0.0);
    double best = 0.0;
    for (const Variant& v : study::mgcfd_variants(p)) {
      const auto rb = runner.run(AppId::MGCFD, p, v);
      if (rb.ok()) best = std::max(best, rb.efficiency);
    }
    best_eff.push_back(best);
  }

  const bench::PaperAggregates paper;
  report::Table t({"PP metric (MG-CFD)", "modeled", "paper"});
  t.add_row({"OpenSYCL + atomics (all platforms)",
             report::fmt(pp_metric(osycl_atomics_eff), 2),
             report::fmt(paper.pp_mgcfd_osycl_atomics, 2)});
  t.add_row({"best compiler+variant per platform",
             report::fmt(pp_metric(best_eff), 2),
             report::fmt(paper.pp_mgcfd_best, 2)});
  t.render(std::cout);
  return 0;
}
