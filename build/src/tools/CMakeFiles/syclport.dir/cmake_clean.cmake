file(REMOVE_RECURSE
  "CMakeFiles/syclport.dir/main.cpp.o"
  "CMakeFiles/syclport.dir/main.cpp.o.d"
  "syclport"
  "syclport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syclport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
