#pragma once
/// \file dat.hpp
/// OP2 dat: `dim` values of type T per element of a set. The physical
/// placement of the (element x component) values is the dat's Layout
/// (layout.hpp): AoS (the seed behaviour and the default), SoA, or
/// padded AoSoA. set_layout() transcodes in place; kernels never see
/// the difference because non-AoS dats are routed through the staged
/// par_loop lowering, which materializes contiguous per-element values
/// in scratch. In ModelOnly contexts no storage is allocated.
///
/// Storage is an rt::mem::Array: pooled allocation, parallel
/// streaming-zero initialization, huge pages above the threshold.

#include <stdexcept>
#include <string>
#include <vector>

#include "op2/layout.hpp"
#include "op2/set.hpp"
#include "runtime/mem/array.hpp"

namespace syclport::op2 {

template <typename T>
class Dat {
 public:
  Dat(Set& set, int dim, std::string name, bool allocate = true)
      : set_(&set), dim_(dim), name_(std::move(name)),
        layout_(default_layout()) {
    if (allocate)
      data_ = rt::mem::Array<T>(
          layout_slots(layout_, set.size(), static_cast<std::size_t>(dim)));
  }

  [[nodiscard]] Set& set() const { return *set_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool allocated() const { return !data_.empty(); }
  [[nodiscard]] Layout layout() const { return layout_; }

  /// Pointer to element e's contiguous values. Only meaningful for AoS
  /// - the eager par_loop binders hand these straight to kernels, so
  /// they assert the layout instead of silently mis-addressing.
  [[nodiscard]] T* elem(std::size_t e) {
    if (layout_ != Layout::AoS)
      throw std::logic_error("Dat " + name_ +
                             ": elem() requires AoS layout (use at())");
    return data_.data() + e * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] const T* elem(std::size_t e) const {
    if (layout_ != Layout::AoS)
      throw std::logic_error("Dat " + name_ +
                             ": elem() requires AoS layout (use at())");
    return data_.data() + e * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] T& at(std::size_t e, int c = 0) {
    return data_[layout_index(layout_, e, static_cast<std::size_t>(c),
                              set_->size(), static_cast<std::size_t>(dim_))];
  }
  [[nodiscard]] const T& at(std::size_t e, int c = 0) const {
    return data_[layout_index(layout_, e, static_cast<std::size_t>(c),
                              set_->size(), static_cast<std::size_t>(dim_))];
  }

  [[nodiscard]] double bytes() const {
    return static_cast<double>(set_->size()) * dim_ * sizeof(T);
  }

  /// Raw physical storage base. Null when not allocated. Size and
  /// meaning depend on layout() - op2::checkpoint serializes the
  /// canonical form (canonical_values) instead.
  [[nodiscard]] T* storage() noexcept { return data_.data(); }
  [[nodiscard]] const T* storage() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return data_.size() * sizeof(T);
  }

  /// Transcode to `l` in place (values preserved exactly; padding slots
  /// of AoSoA are zeroed). No-op when already in that layout.
  void set_layout(Layout l) {
    if (l == layout_) return;
    if (!allocated()) {
      layout_ = l;
      return;
    }
    const std::size_t n = set_->size();
    const auto dim = static_cast<std::size_t>(dim_);
    rt::mem::Array<T> next(layout_slots(l, n, dim));
    if (l == Layout::AoSoA) next.fill(T{});
    for (std::size_t e = 0; e < n; ++e)
      for (std::size_t c = 0; c < dim; ++c)
        next[layout_index(l, e, c, n, dim)] =
            data_[layout_index(layout_, e, c, n, dim)];
    data_ = std::move(next);
    layout_ = l;
  }

  /// The layout- and ordering-independent serialization: value (e, c)
  /// of the *creation-time* element numbering at slot e*dim + c
  /// (original-order AoS). Checkpoints of a renumbered SoA dat and of
  /// the untouched seed dat are bit-identical.
  [[nodiscard]] std::vector<T> canonical_values() const {
    const std::size_t n = set_->size();
    const auto dim = static_cast<std::size_t>(dim_);
    std::vector<T> out(n * dim);
    for (std::size_t e = 0; e < n; ++e)
      for (std::size_t c = 0; c < dim; ++c)
        out[set_->to_original(e) * dim + c] = at(e, static_cast<int>(c));
    return out;
  }

  /// Inverse of canonical_values(): scatter an original-order AoS image
  /// back through the set's current numbering and this dat's layout.
  void assign_canonical(const std::vector<T>& in) {
    const std::size_t n = set_->size();
    const auto dim = static_cast<std::size_t>(dim_);
    if (in.size() != n * dim)
      throw std::invalid_argument("Dat " + name_ + ": canonical size");
    for (std::size_t e = 0; e < n; ++e)
      for (std::size_t c = 0; c < dim; ++c)
        at(e, static_cast<int>(c)) = in[set_->to_original(e) * dim + c];
  }

  /// Parallel streaming-store fill of the whole dat (padding included,
  /// so AoSoA pad slots hold v too - sum() skips them).
  void fill(T v) { data_.fill(v); }

  [[nodiscard]] double sum() const {
    const std::size_t n = set_->size();
    const auto dim = static_cast<std::size_t>(dim_);
    double s = 0.0;
    for (std::size_t e = 0; e < n; ++e)
      for (std::size_t c = 0; c < dim; ++c)
        s += static_cast<double>(at(e, static_cast<int>(c)));
    return s;
  }

 private:
  Set* set_;
  int dim_;
  std::string name_;
  Layout layout_;
  rt::mem::Array<T> data_;
};

}  // namespace syclport::op2
