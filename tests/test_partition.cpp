// Tests for the RCB partitioner and the owner-compute halo analysis
// (the PT-Scotch substitute, DESIGN.md §2).

#include <gtest/gtest.h>

#include <random>

#include "apps/mgcfd/mesh.hpp"
#include "op2/partition.hpp"

namespace op2 = syclport::op2;

namespace {

/// Rotor mesh coordinates + edge map for partitioning tests.
struct MeshFixture {
  syclport::apps::mgcfd::MultigridMesh mesh =
      syclport::apps::mgcfd::build_rotor_mesh(20, 18, 12, 1);
  std::span<const std::array<double, 3>> coords() const {
    return mesh.levels[0].coords;
  }
  const op2::Map& e2n() const { return *mesh.levels[0].e2n; }
};

}  // namespace

TEST(Rcb, EveryElementAssignedInRange) {
  MeshFixture f;
  for (int nparts : {1, 2, 3, 7, 16}) {
    const auto part = op2::rcb_partition(f.coords(), nparts);
    ASSERT_EQ(part.size(), f.coords().size());
    int seen_max = 0;
    for (int p : part) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, nparts);
      seen_max = std::max(seen_max, p);
    }
    EXPECT_EQ(seen_max, nparts - 1);  // every part non-empty (balanced)
  }
}

TEST(Rcb, BalancedWithinTolerance) {
  MeshFixture f;
  for (int nparts : {2, 4, 6, 12}) {
    const auto part = op2::rcb_partition(f.coords(), nparts);
    const auto st = op2::analyze_partition(f.e2n(), part, nparts);
    EXPECT_LT(st.max_imbalance, 1.1) << nparts << " parts";
  }
}

TEST(Rcb, Deterministic) {
  MeshFixture f;
  const auto a = op2::rcb_partition(f.coords(), 8);
  const auto b = op2::rcb_partition(f.coords(), 8);
  EXPECT_EQ(a, b);
}

TEST(Rcb, SinglePartIsTrivial) {
  MeshFixture f;
  const auto part = op2::rcb_partition(f.coords(), 1);
  for (int p : part) EXPECT_EQ(p, 0);
  const auto st = op2::analyze_partition(f.e2n(), part, 1);
  EXPECT_EQ(st.cut_elems, 0u);
  EXPECT_DOUBLE_EQ(st.avg_halo_fraction, 0.0);
}

TEST(Rcb, BeatsRandomPartitionOnCutAndHalo) {
  // The reason one uses a geometric/graph partitioner at all: far fewer
  // cut edges and smaller halos than a random assignment.
  MeshFixture f;
  const int nparts = 8;
  const auto rcb = op2::rcb_partition(f.coords(), nparts);
  std::vector<int> random(rcb.size());
  std::mt19937 rng(11);
  for (auto& p : random) p = static_cast<int>(rng() % nparts);

  const auto st_rcb = op2::analyze_partition(f.e2n(), rcb, nparts);
  const auto st_rnd = op2::analyze_partition(f.e2n(), random, nparts);
  EXPECT_LT(st_rcb.cut_fraction, 0.4 * st_rnd.cut_fraction);
  EXPECT_LT(st_rcb.avg_halo_fraction, 0.5 * st_rnd.avg_halo_fraction);
}

TEST(Rcb, CutFractionShrinksWithFewerParts) {
  MeshFixture f;
  const auto p2 = op2::analyze_partition(
      f.e2n(), op2::rcb_partition(f.coords(), 2), 2);
  const auto p16 = op2::analyze_partition(
      f.e2n(), op2::rcb_partition(f.coords(), 16), 16);
  EXPECT_LT(p2.cut_fraction, p16.cut_fraction);
}

TEST(Rcb, OwnedElementsCoverSet) {
  MeshFixture f;
  const auto part = op2::rcb_partition(f.coords(), 6);
  const auto st = op2::analyze_partition(f.e2n(), part, 6);
  std::size_t total = 0;
  for (auto n : st.owned_elems) total += n;
  EXPECT_EQ(total, f.e2n().from().size());
}

TEST(Rcb, RejectsBadInput) {
  MeshFixture f;
  EXPECT_THROW(op2::rcb_partition(f.coords(), 0), std::invalid_argument);
  std::vector<int> short_part(3, 0);
  EXPECT_THROW(op2::analyze_partition(f.e2n(), short_part, 2),
               std::invalid_argument);
}
