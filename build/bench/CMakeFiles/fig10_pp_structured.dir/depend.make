# Empty dependencies file for fig10_pp_structured.
# This may be replaced when dependencies are built.
