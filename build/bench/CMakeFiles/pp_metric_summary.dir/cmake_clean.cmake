file(REMOVE_RECURSE
  "CMakeFiles/pp_metric_summary.dir/pp_metric_summary.cpp.o"
  "CMakeFiles/pp_metric_summary.dir/pp_metric_summary.cpp.o.d"
  "pp_metric_summary"
  "pp_metric_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_metric_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
