file(REMOVE_RECURSE
  "CMakeFiles/op2.dir/dist.cpp.o"
  "CMakeFiles/op2.dir/dist.cpp.o.d"
  "CMakeFiles/op2.dir/locality.cpp.o"
  "CMakeFiles/op2.dir/locality.cpp.o.d"
  "CMakeFiles/op2.dir/partition.cpp.o"
  "CMakeFiles/op2.dir/partition.cpp.o.d"
  "CMakeFiles/op2.dir/plan.cpp.o"
  "CMakeFiles/op2.dir/plan.cpp.o.d"
  "libop2.a"
  "libop2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
