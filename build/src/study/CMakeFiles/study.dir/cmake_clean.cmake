file(REMOVE_RECURSE
  "CMakeFiles/study.dir/study.cpp.o"
  "CMakeFiles/study.dir/study.cpp.o.d"
  "CMakeFiles/study.dir/trace.cpp.o"
  "CMakeFiles/study.dir/trace.cpp.o.d"
  "libstudy.a"
  "libstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
