#pragma once
/// \file mem.hpp
/// NUMA/bandwidth-aware memory subsystem: the allocation layer every
/// device-visible storage path (sycl::buffer, USM, OPS/OP2 dats) routes
/// through.
///
/// The paper's applications are bandwidth-bound, so what the allocator
/// does to the memory system matters as much as what the executor does:
///  - a size-class *pool* (per-thread free caches over a global arena)
///    recycles blocks so iterative apps that create per-timestep
///    temporaries stop paying mmap + page-fault + memset churn;
///  - *parallel first-touch*: fresh pages are touched (or zeroed) by
///    the thread-pool workers under a static schedule - the same
///    worker-to-range topology the executor uses to stream the data -
///    so on first-touch NUMA systems pages land next to the cores that
///    will read them (BabelStream documents this as a requirement for
///    meaningful CPU numbers);
///  - *transparent huge pages*: allocations at or above 2 MiB are
///    2 MiB-aligned and madvise(MADV_HUGEPAGE)d, cutting TLB pressure
///    on the multi-GiB working sets the study uses;
///  - telemetry (pool hit rate, bytes first-touched, huge-page
///    coverage) is exported through stats() and surfaced by
///    sycl::launch_log and the study report.
///
/// Knobs (all parsed through rt::env, docs/memory.md):
///   SYCLPORT_POOL=on|off          pool on/off           (default on)
///   SYCLPORT_POOL_MAX_MB=N        pooled-bytes cap      (default 1024)
///   SYCLPORT_HUGEPAGES=on|off     huge-page path        (default on)
///   SYCLPORT_FIRST_TOUCH=on|off   parallel first touch  (default on)
///   SYCLPORT_STREAM_STORES=on|off non-temporal stores   (default on)

#include <cstddef>
#include <cstdint>
#include <optional>

namespace syclport::rt::mem {

/// Process-wide configuration, initialised once from the environment.
struct Config {
  bool pool = true;         ///< size-class pooling of freed blocks
  bool hugepages = true;    ///< 2 MiB alignment + MADV_HUGEPAGE >= threshold
  bool first_touch = true;  ///< parallel page touch/zero of fresh blocks
  bool stream_stores = true;  ///< non-temporal stores in fill/copy paths
  std::size_t pool_max_bytes = std::size_t{1024} << 20;  ///< arena cap
};

[[nodiscard]] const Config& config();

/// Replace the configuration (tests/benches). Flushes the pool so
/// blocks allocated under the old config are returned to the OS with
/// their recorded alignment.
void set_config_for_testing(const Config& c);

/// How alloc() initialises a fresh block.
enum class Init : std::uint8_t {
  None,   ///< no touch: the caller materialises lazily (sycl::buffer)
  Touch,  ///< parallel first-touch of every page, content unspecified
  Zero,   ///< parallel streaming zero of the whole block
};

/// Allocate `bytes` (>= 64-byte aligned; 2 MiB-aligned on the
/// huge-page path). Pool-reused blocks skip Init::Touch - their pages
/// are already placed - but Init::Zero always zeroes.
[[nodiscard]] void* alloc(std::size_t bytes, Init init = Init::Touch);

/// Return a block to the pool (or to the OS when pooling is off, the
/// block's class is not pooled, or the arena cap is reached). Null is
/// ignored.
void dealloc(void* p) noexcept;

/// Release every pooled block to the OS (benches/tests; also used by
/// set_config_for_testing).
void trim();

/// Rounded block size alloc() would use for a request of `bytes`
/// (the size-class boundary; exposed for tests).
[[nodiscard]] std::size_t size_class_bytes(std::size_t bytes) noexcept;

/// Parallel streaming zero of an existing allocation - the lazy
/// materialisation path of sycl::buffer. Counts toward zeroed and
/// first-touched telemetry.
void zero_fill(void* p, std::size_t bytes);

/// Cumulative allocation/placement telemetry (relaxed atomic counters;
/// a snapshot is internally consistent enough for reporting).
struct MemStats {
  std::uint64_t alloc_calls = 0;     ///< alloc() invocations
  std::uint64_t pool_hits = 0;       ///< served from a free cache/arena
  std::uint64_t fresh_allocs = 0;    ///< served by the OS
  /// Requests served by the graceful-degradation path: the pooled
  /// size-class allocation failed (arena-cap exhaustion or upstream
  /// bad_alloc, real or injected), so the request was satisfied by a
  /// plain aligned allocation that bypasses the pool. Never fatal;
  /// docs/resilience.md.
  std::uint64_t pool_fallbacks = 0;
  std::uint64_t bytes_allocated = 0; ///< cumulative rounded bytes handed out
  std::uint64_t bytes_pooled = 0;    ///< bytes currently parked in the pool
  std::uint64_t bytes_outstanding = 0;  ///< live (handed out, not freed)
  std::uint64_t bytes_first_touched = 0;  ///< parallel touch/zero paths
  std::uint64_t bytes_zeroed = 0;         ///< Init::Zero + zero_fill
  std::uint64_t hugepage_bytes = 0;  ///< cumulative bytes on the huge path
  std::uint64_t stream_fill_bytes = 0;  ///< streaming-store fill traffic
  std::uint64_t stream_copy_bytes = 0;  ///< streaming-store copy traffic

  /// Fraction of alloc() calls served by the pool.
  [[nodiscard]] double pool_hit_rate() const {
    return alloc_calls == 0
               ? 0.0
               : static_cast<double>(pool_hits) /
                     static_cast<double>(alloc_calls);
  }
  /// Fraction of cumulative allocated bytes on the huge-page path.
  [[nodiscard]] double hugepage_coverage() const {
    return bytes_allocated == 0
               ? 0.0
               : static_cast<double>(hugepage_bytes) /
                     static_cast<double>(bytes_allocated);
  }
};

[[nodiscard]] MemStats stats();
void reset_stats_for_testing();

/// Thread-local override of Config::first_touch - the autotuner's
/// first-touch axis applies its decided value through this while a
/// tuned scope is live. nullopt = follow the config.
[[nodiscard]] std::optional<bool> first_touch_override() noexcept;
void set_first_touch_override(std::optional<bool> v) noexcept;

/// Effective first-touch switch: the thread-local override if present,
/// else the config.
[[nodiscard]] bool first_touch_active() noexcept;

/// Effective streaming-store switch (config; checked by stream.hpp).
[[nodiscard]] bool stream_stores_active() noexcept;

namespace detail {
/// Telemetry hooks for the streaming-store helpers (stream.hpp).
void note_stream_fill(std::size_t bytes) noexcept;
void note_stream_copy(std::size_t bytes) noexcept;
}  // namespace detail

}  // namespace syclport::rt::mem
