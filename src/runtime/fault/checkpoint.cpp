#include "runtime/fault/checkpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/crc32.hpp"

namespace syclport::rt::fault {

namespace {

constexpr std::uint32_t kMagic = 0x53504B31;  // "SPK1"
constexpr std::uint32_t kVersion = 1;

/// Streaming writer that mirrors every byte into a running CRC so the
/// trailing whole-file checksum covers exactly what was written.
struct CrcWriter {
  std::ofstream out;
  std::uint32_t crc = 0;
  bool ok = true;

  void write(const void* p, std::size_t n) {
    crc = crc32_update(crc, p, n);
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    ok = ok && static_cast<bool>(out);
  }
  void u32(std::uint32_t v) { write(&v, sizeof v); }
  void u64(std::uint64_t v) { write(&v, sizeof v); }
};

/// Bounds-checked reader over the in-memory file image.
struct Reader {
  const unsigned char* p;
  std::size_t size;
  std::size_t at = 0;

  [[nodiscard]] bool take(void* out, std::size_t n) {
    if (n > size - at) return false;
    std::memcpy(out, p + at, n);
    at += n;
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& v) { return take(&v, sizeof v); }
  [[nodiscard]] bool u64(std::uint64_t& v) { return take(&v, sizeof v); }
};

}  // namespace

std::string unique_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

bool write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = unique_temp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void Snapshot::add(std::string name, void* data, std::size_t bytes) {
  for (const auto& r : regions_)
    if (r.name == name)
      throw checkpoint_error(name, "duplicate region name");
  regions_.push_back({std::move(name), data, bytes});
}

std::size_t Snapshot::total_bytes() const noexcept {
  std::size_t t = 0;
  for (const auto& r : regions_) t += r.bytes;
  return t;
}

void Snapshot::save(const std::string& path) const {
  const std::string tmp = unique_temp_path(path);
  {
    CrcWriter w{std::ofstream(tmp, std::ios::binary | std::ios::trunc)};
    if (!w.out) throw checkpoint_error(path, "cannot open temp file");
    w.u32(kMagic);
    w.u32(kVersion);
    w.u32(static_cast<std::uint32_t>(regions_.size()));
    w.u32(0);  // reserved
    for (const auto& r : regions_) {
      w.u32(static_cast<std::uint32_t>(r.name.size()));
      w.u32(crc32(r.data, r.bytes));
      w.u64(r.bytes);
      w.write(r.name.data(), r.name.size());
      w.write(r.data, r.bytes);
    }
    const std::uint32_t file_crc = w.crc;
    w.u32(file_crc);
    w.out.flush();
    if (!w.ok || !w.out) {
      std::remove(tmp.c_str());
      throw checkpoint_error(path, "write failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw checkpoint_error(path, "atomic rename failed");
  }
}

void Snapshot::restore(const std::string& path) {
  std::vector<unsigned char> image;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw checkpoint_error(path, "missing or unreadable");
    const auto size = in.tellg();
    in.seekg(0);
    image.resize(static_cast<std::size_t>(size));
    if (!in.read(reinterpret_cast<char*>(image.data()),
                 static_cast<std::streamsize>(image.size())))
      throw checkpoint_error(path, "read failed");
  }
  if (image.size() < 20) throw checkpoint_error(path, "truncated header");

  // Whole-file CRC covers everything before the trailing word.
  std::uint32_t trailer;
  std::memcpy(&trailer, image.data() + image.size() - sizeof trailer,
              sizeof trailer);
  if (crc32(image.data(), image.size() - sizeof trailer) != trailer)
    throw checkpoint_error(path, "file checksum mismatch (corrupt)");

  Reader rd{image.data(), image.size() - sizeof trailer};
  std::uint32_t magic, version, count, reserved;
  if (!rd.u32(magic) || !rd.u32(version) || !rd.u32(count) ||
      !rd.u32(reserved))
    throw checkpoint_error(path, "truncated header");
  if (magic != kMagic) throw checkpoint_error(path, "not a checkpoint file");
  if (version != kVersion)
    throw checkpoint_error(path, "unsupported version " +
                                     std::to_string(version));
  if (count != regions_.size())
    throw checkpoint_error(
        path, "region count mismatch: file has " + std::to_string(count) +
                  ", " + std::to_string(regions_.size()) + " registered");

  // Validate every region (names, sizes, payload CRCs) before copying
  // anything, so a rejected file leaves the application state intact.
  struct Pending {
    const Region* region;
    const unsigned char* payload;
  };
  std::vector<Pending> pending;
  pending.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len, region_crc;
    std::uint64_t bytes;
    if (!rd.u32(name_len) || !rd.u32(region_crc) || !rd.u64(bytes))
      throw checkpoint_error(path, "truncated region header");
    std::string name(name_len, '\0');
    if (!rd.take(name.data(), name_len))
      throw checkpoint_error(path, "truncated region name");
    if (bytes > rd.size - rd.at)
      throw checkpoint_error(path, "truncated region payload");
    const unsigned char* payload = rd.p + rd.at;
    rd.at += static_cast<std::size_t>(bytes);

    const Region* match = nullptr;
    for (const auto& r : regions_)
      if (r.name == name) {
        match = &r;
        break;
      }
    if (!match)
      throw checkpoint_error(path, "unknown region '" + name + "'");
    if (match->bytes != bytes)
      throw checkpoint_error(
          path, "region '" + name + "' size mismatch: file has " +
                    std::to_string(bytes) + " bytes, registered " +
                    std::to_string(match->bytes));
    if (crc32(payload, static_cast<std::size_t>(bytes)) != region_crc)
      throw checkpoint_error(path,
                             "region '" + name + "' checksum mismatch");
    pending.push_back({match, payload});
  }
  if (rd.at != rd.size)
    throw checkpoint_error(path, "trailing bytes after last region");

  for (const auto& p : pending)
    std::memcpy(p.region->data, p.payload, p.region->bytes);
}

}  // namespace syclport::rt::fault
