// Quickstart: the miniSYCL programming model in five minutes.
//
// Shows the exact surface the study's applications are written
// against: queues, USM, flat parallel_for(range), tuned
// parallel_for(nd_range) with work-group barriers and local memory,
// built-in reductions, and the launch log that feeds the hardware
// model.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <numeric>
#include <vector>

#include "sycl/sycl.hpp"

int main() {
  sycl::queue q;  // host-executor queue (the "device" is modeled)
  std::printf("device: %s\n\n", q.get_device().name().c_str());

  // --- 1. USM + flat parallel_for: the SYCL "flat" formulation --------
  const std::size_t n = 1 << 16;
  double* a = sycl::malloc_shared<double>(n, q);
  double* b = sycl::malloc_shared<double>(n, q);
  double* c = sycl::malloc_shared<double>(n, q);
  q.fill(a, 1.0, n);
  q.fill(b, 2.0, n);

  q.parallel_for("triad_flat", sycl::range<1>(n), [=](sycl::item<1> it) {
    const std::size_t i = it.get_linear_id();
    c[i] = a[i] + 0.4 * b[i];
  });
  std::printf("flat triad:      c[17] = %.2f (expect 1.80)\n", c[17]);

  // --- 2. nd_range + local memory + barrier: the tuned formulation ----
  const std::size_t wg = 64;
  sycl::local_accessor<double, 1> tile{sycl::range<1>(wg)};
  q.parallel_for("reverse_nd",
                 sycl::nd_range<1>(sycl::range<1>(n), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const std::size_t l = it.get_local_id(0);
                   tile[l] = c[it.get_global_id(0)];
                   it.barrier();  // cooperative-fiber barrier underneath
                   c[it.get_global_id(0)] =
                       tile[wg - 1 - l];  // reverse within the group
                 });
  std::printf("nd_range tile:   c[0] = %.2f (expect 1.80)\n", c[0]);

  // --- 3. built-in reduction -------------------------------------------
  double sum = 0.0;
  q.parallel_for(sycl::range<1>(n), sycl::reduction(&sum, sycl::plus<double>{}),
                 [=](sycl::item<1> it, auto& r) {
                   r += a[it.get_linear_id()];
                 });
  std::printf("reduction:       sum(a) = %.0f (expect %zu)\n\n", sum, n);

  // --- 4. the launch log: what the hardware model consumes -------------
  auto& log = sycl::launch_log::instance();
  log.clear();
  log.set_enabled(true);
  q.parallel_for("probe_flat", sycl::range<2>(128, 256), [](sycl::item<2>) {});
  q.parallel_for("probe_nd",
                 sycl::nd_range<2>(sycl::range<2>(128, 256),
                                   sycl::range<2>(4, 64)),
                 [](sycl::nd_item<2>) {});
  log.set_enabled(false);
  for (const auto& rec : log.snapshot()) {
    std::printf("launch %-10s global=%zux%zu  local=%s\n",
                rec.kernel_name.c_str(), rec.global[0], rec.global[1],
                rec.local ? (std::to_string((*rec.local)[0]) + "x" +
                             std::to_string((*rec.local)[1]))
                                .c_str()
                          : "(runtime's choice - the flat formulation)");
  }

  sycl::free(a, q);
  sycl::free(b, q);
  sycl::free(c, q);
  std::printf("\nok\n");
  return 0;
}
