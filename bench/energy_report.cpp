// Energy-efficiency extension: useful bytes per joule for every
// application's best variant on each platform. Not a paper figure - a
// forward extension in the spirit of the P3HPC series - but grounded
// entirely in the same modeled runtimes and vendor TDPs. The headline:
// for bandwidth-bound codes the GPUs' bandwidth-per-watt advantage
// (~5 GB/s/W vs ~0.6 GB/s/W) dwarfs every programming-model effect the
// paper measures.

#include <iostream>

#include "common/figures.hpp"
#include "core/report.hpp"
#include "hwmodel/energy.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  std::cout << "=== Energy: useful bytes per joule (best variant) ===\n\n";

  report::Table spec({"platform", "TDP (W)", "STREAM GB/s per W"});
  for (PlatformId p : kAllPlatforms) {
    const auto ps = hw::power_spec(p);
    spec.add_row({std::string(to_string(p)), report::fmt(ps.tdp_w, 0),
                  report::fmt(hw::platform(p).stream_bw_gbs / ps.tdp_w, 2)});
  }
  spec.render(std::cout);
  std::cout << "\n";

  std::vector<std::string> header{"app"};
  for (PlatformId p : kAllPlatforms) header.emplace_back(to_string(p));
  report::Table t(header);
  for (AppId a : kAllApps) {
    std::vector<std::string> row{std::string(to_string(a))};
    for (PlatformId p : kAllPlatforms) {
      double best_gbj = 0.0;
      const auto variants = a == AppId::MGCFD
                                ? study::mgcfd_variants(p)
                                : study::structured_variants(p);
      for (const Variant& v : variants) {
        const auto r = runner.run(a, p, v);
        if (!r.ok()) continue;
        best_gbj = std::max(
            best_gbj, hw::gb_per_joule(p, r.useful_bytes, r.runtime_s));
      }
      row.push_back(report::fmt(best_gbj, 2) + " GB/J");
    }
    t.add_row(row);
  }
  t.render(std::cout);
  std::cout << "\n(GB of application-useful data moved per joule of "
               "TDP-bounded board energy.)\n";
  return 0;
}
