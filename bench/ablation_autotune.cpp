// Ablation: online autotuner vs hand-set launch parameters
// (docs/tuning.md).
//
// The paper's conclusion (§4.4) is that the winning schedule /
// work-group shape is per-kernel and per-platform, so any fixed choice
// leaves performance behind somewhere. The runtime's answer is the
// online autotuner: launch sites race a prior-seeded candidate set via
// successive halving and persist the winner under a device
// fingerprint. This bench quantifies the whole story on one
// bandwidth-bound stencil sweep:
//
//   1. hand-set     - the sweep pinned to each schedule in turn
//                     (tuning off), the baseline a careful user reaches
//                     with env vars;
//   2. cold tuned   - same sweep with tuning on and an empty cache:
//                     per-iteration times trace the convergence curve,
//                     and the steady state must be no slower than the
//                     best hand-set schedule (the acceptance check);
//   3. warm tuned   - tuner reset against the cache written by (2), as
//                     a process restart would see it: the launch log
//                     must show zero Exploring launches;
//   4. bookkeeping  - scheduler overhead per launch on a RAW-dependent
//                     chain of trivial commands, in-order vs
//                     out-of-order, i.e. the cost of the pooled-Command
//                     DAG machinery that times every tuned launch.
//
// Emits ablation_autotune.csv (summary + convergence curve) next to
// the binary like the other ablations.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "ops/ops.hpp"
#include "runtime/autotune/autotune.hpp"
#include "sycl/sycl.hpp"

using namespace syclport;
namespace ops = syclport::ops;
namespace at = syclport::rt::autotune;

namespace {

constexpr std::size_t kN = 768;       // 768^2 doubles x 2 dats = 9 MiB
constexpr int kColdIters = 480;       // enough to drain any race here
                                      // (schedule x variant-menu joint)
constexpr const char* kCache = "ablation_autotune.cache.json";

/// One bandwidth-bound 5-point sweep b = lap(a) over an n x n block.
struct Sweep {
  ops::Context ctx;
  ops::Block grid;
  ops::Dat<double> a, b;

  explicit Sweep(const ops::Options& o)
      : ctx(o),
        grid(ctx, "g", 2, {kN, kN, 1}),
        a(grid, "a", 1, 1),
        b(grid, "b", 1, 1) {
    for (long i = -1; i <= static_cast<long>(kN); ++i)
      for (long j = -1; j <= static_cast<long>(kN); ++j)
        a.at(i, j) = 0.01 * static_cast<double>(i - j);
    ctx.opt.record = false;  // profile recording is not under test
  }

  void iterate() {
    ops::par_loop(ctx, {"tune_sweep"}, grid, ops::Range::all(grid),
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) +
                                0.2 * (in(1, 0) + in(-1, 0) + in(0, 1) +
                                       in(0, -1) - 4.0 * in(0, 0));
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
  }

  /// The tuning site ops::par_loop derives for this sweep, for
  /// querying the tuner's verdict. Flat 2D non-reduction sweeps race
  /// the kernel-variant menu and the cache-blocked traversal too.
  [[nodiscard]] static at::Site site() {
    at::Site s;
    s.name = "tune_sweep";
    s.dims = 2;
    s.global = {kN, kN, 1};
    s.axes = at::kScheduleGrain | at::kVariantAxes | at::kCacheBlock;
    return s;
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Steady-state ms/iteration with tuning off and `sched` pinned.
double hand_set_ms(rt::Schedule sched) {
  ops::Options o;
  o.backend = ops::Backend::Threads;
  o.tune = false;
  o.schedule = sched;
  Sweep s(o);
  for (int i = 0; i < 5; ++i) s.iterate();
  std::vector<double> t;
  for (int i = 0; i < 15; ++i) {
    WallTimer w;
    s.iterate();
    t.push_back(w.seconds());
  }
  return median(t) * 1e3;
}

/// Trivial RAW chain, the ablation_async bookkeeping experiment on the
/// pooled-Command scheduler: per-launch overhead of deferred submission
/// over immediate in-order execution.
double chain_overhead_us() {
  constexpr int kLaunches = 256;
  std::vector<double> buf(64, 0.0);
  double* p = buf.data();
  auto run = [&](sycl::queue q) {
    WallTimer t;
    for (int c = 0; c < kLaunches; ++c) {
      q.submit([&](sycl::handler& h) {
        h.require(p, sycl::access_mode::read_write);
        h.single_task([p] { p[0] += 1.0; });
      });
    }
    q.wait();
    return t.seconds();
  };
  const sycl::property_list in_order{sycl::property::queue::in_order{}};
  run(sycl::queue{in_order});  // warm both paths (pool, workers)
  run(sycl::queue{});
  std::vector<double> ordered, ooo;
  for (int rep = 0; rep < 7; ++rep) {
    ordered.push_back(run(sycl::queue{in_order}));
    ooo.push_back(run(sycl::queue{}));
  }
  return (median(ooo) - median(ordered)) / kLaunches * 1e6;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: online autotuner vs hand-set schedules ===\n\n";
  report::Table t({"experiment", "config", "metric", "value"});

  // 1. Hand-set baselines: the best a static env-var choice achieves.
  std::cout << "-- hand-set schedules (tuning off) --\n";
  double best_hand_ms = 1e30;
  std::string best_hand;
  rt::Schedule best_hand_sched = rt::Schedule::Static;
  for (const auto sched : {rt::Schedule::Static, rt::Schedule::Dynamic,
                           rt::Schedule::Steal}) {
    const double ms = hand_set_ms(sched);
    std::cout << "  " << rt::to_string(sched) << ": " << report::fmt(ms, 3)
              << " ms/iter\n";
    t.add_row({"hand_set", rt::to_string(sched), "ms_per_iter",
               report::fmt(ms, 4)});
    if (ms < best_hand_ms) {
      best_hand_ms = ms;
      best_hand = rt::to_string(sched);
      best_hand_sched = sched;
    }
  }

  // 2. Cold tuned run: empty cache, trace the convergence curve.
  std::remove(kCache);
  auto& tuner = at::Autotuner::instance();
  tuner.reset(at::Autotuner::Mode::On, /*fingerprint=*/"", kCache);

  std::cout << "\n-- cold tuned run (" << kColdIters << " iters) --\n";
  ops::Options tuned_opt;
  tuned_opt.backend = ops::Backend::Threads;
  tuned_opt.tune = true;
  Sweep tuned(tuned_opt);
  std::vector<double> iter_ms;
  std::vector<std::uint64_t> explored_at;
  int converged_iter = -1;
  for (int i = 0; i < kColdIters; ++i) {
    WallTimer w;
    tuned.iterate();
    iter_ms.push_back(w.seconds() * 1e3);
    explored_at.push_back(tuner.explored_launches());
    if (converged_iter < 0 && tuner.converged(Sweep::site()))
      converged_iter = i;
  }
  const std::uint64_t explored = tuner.explored_launches();
  const auto winner = tuner.best(Sweep::site());
  const std::string winner_str = winner ? winner->to_string() : "(none)";

  // Steady state vs the best hand-set schedule under one protocol:
  // interleaved best-of-rounds, so OS timeslicing and thermal drift
  // hit both sides alike. The tuned side still pays its per-launch
  // decide()/report() on every iteration.
  ops::Options best_opt;
  best_opt.backend = ops::Backend::Threads;
  best_opt.tune = false;
  best_opt.schedule = best_hand_sched;
  Sweep hand(best_opt);
  hand.iterate();
  double tuned_ms = 1e30;
  best_hand_ms = 1e30;
  for (int round = 0; round < 5; ++round) {
    std::vector<double> tt, th;
    for (int i = 0; i < 15; ++i) {
      WallTimer w;
      tuned.iterate();
      tt.push_back(w.seconds());
    }
    for (int i = 0; i < 15; ++i) {
      WallTimer w;
      hand.iterate();
      th.push_back(w.seconds());
    }
    tuned_ms = std::min(tuned_ms, median(tt) * 1e3);
    best_hand_ms = std::min(best_hand_ms, median(th) * 1e3);
  }

  std::cout << "  converged after " << converged_iter << " iterations, "
            << explored << " explored launches\n"
            << "  winner: " << winner_str << "\n"
            << "  steady state " << report::fmt(tuned_ms, 3)
            << " ms/iter vs best hand-set (" << best_hand << ") "
            << report::fmt(best_hand_ms, 3) << " ms/iter (ratio "
            << report::fmt(tuned_ms / best_hand_ms, 3)
            << ", target <= 1.05)\n";
  t.add_row({"cold_tuned", winner_str, "ms_per_iter",
             report::fmt(tuned_ms, 4)});
  t.add_row({"cold_tuned", winner_str, "converged_iter",
             std::to_string(converged_iter)});
  t.add_row({"cold_tuned", winner_str, "explored_launches",
             std::to_string(explored)});
  t.add_row({"cold_tuned", winner_str, "vs_best_hand_ratio",
             report::fmt(tuned_ms / best_hand_ms, 4)});

  // 3. Warm run: a fresh tuner against the just-written cache must
  // serve every launch from the winner - zero Exploring records. Run
  // through the SyclFlat backend so every launch lands in the launch
  // log (Threads-backend sweeps bypass the miniSYCL queue); the site
  // key is the same, so the cache written by (2) serves it.
  tuner.reset(at::Autotuner::Mode::On, "", kCache);
  auto& log = sycl::launch_log::instance();
  log.clear();
  log.set_enabled(true);
  ops::Options warm_opt = tuned_opt;
  warm_opt.backend = ops::Backend::SyclFlat;
  Sweep warm(warm_opt);
  for (int i = 0; i < 10; ++i) warm.iterate();
  log.set_enabled(false);
  std::size_t exploring = 0, exploiting = 0;
  for (const auto& rec : log.snapshot()) {
    if (rec.tune_phase == at::Phase::Exploring) ++exploring;
    if (rec.tune_phase == at::Phase::Exploiting) ++exploiting;
  }
  log.clear();
  std::cout << "\n-- warm run (cache reload) --\n  " << exploring
            << " exploring / " << exploiting
            << " exploiting launches (target: 0 exploring)\n";
  t.add_row({"warm_tuned", "-", "exploring_launches",
             std::to_string(exploring)});
  t.add_row({"warm_tuned", "-", "exploiting_launches",
             std::to_string(exploiting)});

  // 4. Scheduler bookkeeping with pooled Commands + epoch retirement.
  const double overhead = chain_overhead_us();
  std::cout << "\n-- scheduler bookkeeping (pooled commands) --\n  "
            << report::fmt(overhead, 2) << " us/launch DAG overhead\n";
  t.add_row({"bookkeeping", "raw_chain", "sched_overhead_us_per_launch",
             report::fmt(overhead, 3)});

  // Convergence curve for plotting: per-iteration time and cumulative
  // explored launches.
  for (int i = 0; i < kColdIters; i += 2)
    t.add_row({"curve", std::to_string(i), "ms_per_iter",
               report::fmt(iter_ms[static_cast<std::size_t>(i)], 4)});
  for (int i = 0; i < kColdIters; i += 2)
    t.add_row({"curve", std::to_string(i), "explored_cum",
               std::to_string(explored_at[static_cast<std::size_t>(i)])});

  std::cout << "\n";
  t.render(std::cout);
  if (t.save_csv("ablation_autotune.csv"))
    std::cout << "\nwrote ablation_autotune.csv\n";
  std::remove(kCache);
  std::cout << "(the tuner must converge to a configuration no slower than "
               "the best hand-set schedule, and a warm start must skip the "
               "search entirely.)\n";
  return 0;
}
