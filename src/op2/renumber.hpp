#pragma once
/// \file renumber.hpp
/// Mesh-ordering engine. The paper notes the atomics strategy gets its
/// locality from "a good mesh ordering" (§4.3): adjacent edges executed
/// on adjacent work-items touch adjacent vertices. This module produces
/// such orderings and applies them to sets, maps and dats:
///   - MinTarget: sort elements by ascending minimum mapped target
///     (deterministic tie-break on element id, reproducible across
///     platforms and stable-sort implementations);
///   - RCM: reverse Cuthill-McKee over the target-set adjacency a map
///     induces - the classic bandwidth-reduction ordering;
///   - Morton/Hilbert: space-filling-curve orderings from node
///     coordinates (the extruded-annulus positions the MG-CFD mesh
///     generator carries).
/// Every ordering is a permutation perm with perm[new] = old; the
/// inverse (inverse_permutation) relabels map targets and answers
/// "where did element e go". op2::measure_gather quantifies the win;
/// SYCLPORT_RENUMBER picks the app-level default (docs/unstructured.md).

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string_view>
#include <vector>

#include "op2/dat.hpp"
#include "op2/set.hpp"

namespace syclport::op2 {

enum class Ordering : std::uint8_t {
  Identity,   ///< leave the generator's numbering alone
  MinTarget,  ///< elements by ascending minimum mapped target
  RCM,        ///< reverse Cuthill-McKee on the induced target graph
  Morton,     ///< Z-order curve on quantized coordinates
  Hilbert,    ///< Hilbert curve on quantized coordinates
};

[[nodiscard]] std::string_view to_string(Ordering o) noexcept;
[[nodiscard]] std::optional<Ordering> parse_ordering(
    std::string_view s) noexcept;
/// SYCLPORT_RENUMBER when set and valid; nullopt otherwise.
[[nodiscard]] std::optional<Ordering> ordering_from_env();

/// inv[perm[i]] = i: where current position i's element would be found
/// after applying `perm`, and the relabeling table for map targets.
[[nodiscard]] std::vector<int> inverse_permutation(
    const std::vector<int>& perm);

/// Permutation that orders elements of map.from() by ascending minimum
/// mapped target, ties broken by ascending element id (deterministic
/// regardless of sort implementation): perm[new_position] = old_element.
[[nodiscard]] std::vector<int> order_by_min_target(const Map& map);

/// Reverse Cuthill-McKee ordering of map.to() (the *target* set): two
/// targets are adjacent when they share a row of `map`. Components are
/// seeded from their minimum-degree node (ties on id); neighbours are
/// visited in (degree, id) order; the final order is reversed.
[[nodiscard]] std::vector<int> order_rcm(const Map& map);

/// Space-filling-curve orderings of a coordinate set: quantize each
/// position to a 2^10 grid over the bounding box, sort by curve index
/// (ties on id). perm[new] = old.
[[nodiscard]] std::vector<int> order_morton(
    const std::vector<std::array<double, 3>>& coords);
[[nodiscard]] std::vector<int> order_hilbert(
    const std::vector<std::array<double, 3>>& coords);

/// Reorder the rows of `map` so that new row r is old row perm[r].
inline void permute_map(Map& map, const std::vector<int>& perm) {
  const std::size_t n = map.from().size();
  std::vector<int> old(n * static_cast<std::size_t>(map.arity()));
  for (std::size_t e = 0; e < n; ++e)
    for (int i = 0; i < map.arity(); ++i)
      old[e * static_cast<std::size_t>(map.arity()) +
          static_cast<std::size_t>(i)] = map.at(e, i);
  for (std::size_t e = 0; e < n; ++e)
    for (int i = 0; i < map.arity(); ++i)
      map.at(e, i) = old[static_cast<std::size_t>(perm[e]) *
                             static_cast<std::size_t>(map.arity()) +
                         static_cast<std::size_t>(i)];
}

/// Relabel the *entries* of `map` after its target set was renumbered
/// with `target_perm` (perm[new] = old): entry t becomes inverse[t].
void relabel_map_targets(Map& map, const std::vector<int>& target_perm);

/// Reorder a dat on the same set with the same permutation.
template <typename T>
void permute_dat(Dat<T>& dat, const std::vector<int>& perm) {
  const std::size_t n = dat.set().size();
  const auto dim = static_cast<std::size_t>(dat.dim());
  std::vector<T> old(n * dim);
  for (std::size_t e = 0; e < n; ++e)
    for (std::size_t c = 0; c < dim; ++c)
      old[e * dim + c] = dat.at(e, static_cast<int>(c));
  for (std::size_t e = 0; e < n; ++e)
    for (std::size_t c = 0; c < dim; ++c)
      dat.at(e, static_cast<int>(c)) =
          old[static_cast<std::size_t>(perm[e]) * dim + c];
}

/// Graph bandwidth of `map`'s induced target graph: the maximum label
/// distance within one row. RCM exists to shrink this; test_locality
/// asserts it does.
[[nodiscard]] std::size_t map_bandwidth(const Map& map);

}  // namespace syclport::op2
