file(REMOVE_RECURSE
  "CMakeFiles/test_ops_dist.dir/test_ops_dist.cpp.o"
  "CMakeFiles/test_ops_dist.dir/test_ops_dist.cpp.o.d"
  "test_ops_dist"
  "test_ops_dist.pdb"
  "test_ops_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
