// Randomized property tests across the stack: arbitrary nd_range
// shapes, random stencil footprints against the closed-form transfer
// formula, mini-MPI message storms, fiber stress, and random loop
// chains - the "does it hold for inputs nobody hand-picked" layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "hwmodel/energy.hpp"
#include "minimpi/comm.hpp"
#include "ops/loop_chain.hpp"
#include "ops/ops.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/fiber.hpp"
#include "sycl/sycl.hpp"

namespace ops = syclport::ops;
namespace mpi = syclport::mpi;
namespace rt = syclport::rt;
namespace hw = syclport::hw;

TEST(Fuzz, RandomNdLocalShapesNeverChangeResults) {
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t ny = 5 + rng() % 40;
    const std::size_t nx = 5 + rng() % 40;
    ops::Options nd;
    nd.backend = ops::Backend::SyclNd;
    nd.nd_local = {1, 1 + rng() % 7, 1 + rng() % 70};
    auto run = [&](const ops::Options& o) {
      ops::Context ctx(o);
      ops::Block grid(ctx, "g", 2, {ny, nx, 1});
      ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
      for (long i = -1; i <= static_cast<long>(ny); ++i)
        for (long j = -1; j <= static_cast<long>(nx); ++j)
          a.at(i, j) = 0.31 * i + 0.17 * j;
      ops::par_loop(ctx, {"k"}, grid, ops::Range::all(grid),
                    [](ops::ACC<double> out, ops::ACC<double> in) {
                      out(0, 0) = in(1, 0) + 2.0 * in(-1, 0) - in(0, 1);
                    },
                    ops::arg(b, ops::S_PT, ops::Acc::W),
                    ops::arg(a, ops::S2D_5PT, ops::Acc::R));
      return b.interior_sum();
    };
    ops::Options serial;
    serial.backend = ops::Backend::Serial;
    ASSERT_DOUBLE_EQ(run(nd), run(serial))
        << "trial " << trial << " local={1," << nd.nd_local[1] << ","
        << nd.nd_local[2] << "} grid " << ny << "x" << nx;
  }
}

TEST(Fuzz, RandomStencilFootprintsMatchClosedForm) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nz = 3 + rng() % 12;
    const std::size_t ny = 3 + rng() % 12;
    const std::size_t nx = 3 + rng() % 12;
    const int rx = static_cast<int>(rng() % 3);
    const int ry = static_cast<int>(rng() % 3);
    const int rz = static_cast<int>(rng() % 3);
    const int ncomp = 1 + static_cast<int>(rng() % 4);

    ops::Options o;
    o.backend = ops::Backend::Serial;
    o.mode = ops::Mode::ModelOnly;
    ops::Context ctx(o);
    ops::Block grid(ctx, "g", 3, {nz, ny, nx});
    ops::Dat<double> in(grid, "in", ncomp, 2), out(grid, "out", ncomp, 2);
    ops::par_loop(ctx, {"k"}, grid, ops::Range::all(grid),
                  [](ops::ACC<double>, ops::ACC<double>) {},
                  ops::arg(out, ops::S_PT, ops::Acc::W),
                  ops::arg(in, ops::Stencil{rx, ry, rz, 1}, ops::Acc::R));
    ASSERT_EQ(ctx.profiles.size(), 1u);
    const auto& lp = ctx.profiles[0];
    const double read_expect = static_cast<double>(nz + 2 * rz) *
                               (ny + 2 * ry) * (nx + 2 * rx) * ncomp * 8;
    const double write_expect =
        static_cast<double>(nz) * ny * nx * ncomp * 8;
    EXPECT_DOUBLE_EQ(lp.bytes_read, read_expect) << "trial " << trial;
    EXPECT_DOUBLE_EQ(lp.bytes_written, write_expect);
    EXPECT_EQ(lp.radius_fast, rx);
    EXPECT_EQ(lp.radius_mid, ry);
    EXPECT_EQ(lp.radius_slow, rz);
  }
}

TEST(Fuzz, MiniMpiMessageStorm) {
  // Every rank sends a random number of tagged messages to every other
  // rank; all must arrive intact and in per-(src,tag) order.
  const int nranks = 5;
  mpi::run(nranks, [&](mpi::Comm& c) {
    std::mt19937 rng(100 + static_cast<unsigned>(c.rank()));
    std::vector<int> sent_counts(nranks, 0);
    for (int dst = 0; dst < nranks; ++dst) {
      if (dst == c.rank()) continue;
      const int n = 1 + static_cast<int>(rng() % 20);
      sent_counts[dst] = n;
      for (int m = 0; m < n; ++m) {
        const int payload = c.rank() * 10000 + m;
        c.send(dst, /*tag=*/c.rank(), payload);
      }
    }
    // Tell everyone how many to expect.
    for (int dst = 0; dst < nranks; ++dst)
      if (dst != c.rank()) c.send(dst, 999, sent_counts[dst]);
    for (int src = 0; src < nranks; ++src) {
      if (src == c.rank()) continue;
      int expect = 0;
      c.recv(src, 999, expect);
      for (int m = 0; m < expect; ++m) {
        int payload = -1;
        c.recv(src, /*tag=*/src, payload);
        ASSERT_EQ(payload, src * 10000 + m);  // FIFO per (src, tag)
      }
    }
  });
}

TEST(Fuzz, FiberBarrierStress) {
  // Many groups of random sizes with random barrier counts; a shared
  // per-group counter must advance in lock step.
  std::mt19937 rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + rng() % 50;
    const int rounds = 1 + static_cast<int>(rng() % 6);
    std::vector<int> progress(n, 0);
    rt::run_barrier_group(n, [&](std::size_t i) {
      for (int r = 0; r < rounds; ++r) {
        progress[i] = r + 1;
        rt::group_barrier();
        for (std::size_t j = 0; j < n; ++j)
          ASSERT_GE(progress[j], r + 1) << "barrier leaked";
        rt::group_barrier();
      }
    });
  }
}

TEST(Fuzz, RandomLoopChainsTiledEqualUntiled) {
  std::mt19937 rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 12 + rng() % 20;
    const int depth = 2 + static_cast<int>(rng() % 3);
    const std::size_t tile = 1 + rng() % n;

    ops::Options o;
    o.backend = ops::Backend::Serial;
    ops::Context ctx(o);
    ops::Block grid(ctx, "g", 2, {n, n, 1});
    std::vector<std::unique_ptr<ops::Dat<double>>> dats;
    for (int d = 0; d <= depth; ++d)
      dats.push_back(
          std::make_unique<ops::Dat<double>>(grid, "d", 1, 2));
    auto seed = [&] {
      for (long i = -2; i <= static_cast<long>(n) + 1; ++i)
        for (long j = -2; j <= static_cast<long>(n) + 1; ++j)
          dats[0]->at(i, j) = 0.01 * i * j - 0.3 * i;
      for (int d = 1; d <= depth; ++d) dats[static_cast<std::size_t>(d)]->fill(0.0);
    };
    auto build = [&](std::size_t t) {
      seed();
      ops::LoopChain chain(ctx, grid);
      for (int d = 0; d < depth; ++d) {
        chain.enqueue({"s"},
                      [](ops::ACC<double> out, ops::ACC<double> in) {
                        out(0, 0) = 0.3 * in(0, 0) + in(0, 1) - in(1, 0);
                      },
                      ops::arg(*dats[static_cast<std::size_t>(d + 1)],
                               ops::S_PT, ops::Acc::W),
                      ops::arg(*dats[static_cast<std::size_t>(d)],
                               ops::S2D_5PT, ops::Acc::R));
      }
      chain.execute(t);
      return dats[static_cast<std::size_t>(depth)]->interior_sum();
    };
    const double ref = build(0);
    ASSERT_DOUBLE_EQ(build(tile), ref)
        << "trial " << trial << " tile " << tile << " depth " << depth;
  }
}

TEST(Fuzz, EnergyModelSanity) {
  // Included here to keep hwmodel/energy covered: positive, monotone.
  for (syclport::PlatformId p : syclport::kAllPlatforms) {
    const double e1 = hw::run_energy_j(p, 1.0);
    const double e2 = hw::run_energy_j(p, 2.0);
    EXPECT_GT(e1, 0.0);
    EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
    EXPECT_GT(hw::gb_per_joule(p, 1e9, 1.0), 0.0);
  }
  // GPUs beat CPUs on bandwidth per watt.
  EXPECT_GT(hw::gb_per_joule(syclport::PlatformId::A100, 1310e9, 1.0),
            3.0 * hw::gb_per_joule(syclport::PlatformId::Xeon8360Y, 296e9, 1.0));
}

// ---------------------------------------------------------------------
// Kernel variants: whatever register-tile x vector-width x unroll x
// cache-block candidate the autotuner serves a launch, the results must
// be bit-identical to the unparametrized reference loop - on shapes
// nobody hand-picked, through the explore AND exploit phases, on both
// flat lowerings (pool sweep and SYCL flat), stencil and reduction.

TEST(Fuzz, VariantServedLaunchesStayBitExact) {
  namespace at = syclport::rt::autotune;
  struct TunerGuard {
    ~TunerGuard() {
      at::Autotuner::instance().reset(at::Autotuner::Mode::Off, "", "");
    }
  } guard;
  at::Autotuner::instance().reset(at::Autotuner::Mode::On, "fp-fuzz", "");

  std::mt19937 rng(417);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t ny = 7 + rng() % 60;
    const std::size_t nx = 7 + rng() % 60;
    // Integer-valued input: the reduction below is exact in double for
    // any accumulation order, so a mismatch can only mean a variant
    // visited an index twice, skipped one, or mis-handled the tail.
    auto run = [&](ops::Backend be, std::optional<bool> tune, int iters) {
      ops::Options o;
      o.backend = be;
      o.tune = tune;
      o.record = false;
      ops::Context ctx(o);
      ops::Block grid(ctx, "g", 2, {ny, nx, 1});
      ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
      for (long i = -1; i <= static_cast<long>(ny); ++i)
        for (long j = -1; j <= static_cast<long>(nx); ++j)
          a.at(i, j) = static_cast<double>(3 * i - 2 * j);
      double sweep0 = 0.0, red0 = 0.0;
      for (int it = 0; it < iters; ++it) {
        ops::par_loop(ctx, {"fz_sweep"}, grid, ops::Range::all(grid),
                      [](ops::ACC<double> out, ops::ACC<double> in) {
                        out(0, 0) = in(0, 0) + 0.2 * (in(1, 0) + in(-1, 0) +
                                                      in(0, 1) + in(0, -1));
                      },
                      ops::arg(b, ops::S_PT, ops::Acc::W),
                      ops::arg(a, ops::S2D_5PT, ops::Acc::R));
        double red = 0.0;
        ops::par_loop(ctx, {"fz_red", hw::KernelClass::Reduction, 1.0}, grid,
                      ops::Range::all(grid),
                      [](ops::ACC<double> in, ops::Reducer<double> r) {
                        r += in(0, 0);
                      },
                      ops::arg(a, ops::S_PT, ops::Acc::R),
                      ops::reduce(red, ops::RedOp::Sum));
        const double sweep = b.interior_sum();
        if (it == 0) {
          sweep0 = sweep;
          red0 = red;
        }
        EXPECT_EQ(sweep, sweep0)
            << "trial " << trial << " iter " << it << " backend "
            << static_cast<int>(be);
        EXPECT_EQ(red, red0)
            << "trial " << trial << " iter " << it << " backend "
            << static_cast<int>(be);
        if (sweep != sweep0 || red != red0) break;
      }
      return std::pair{sweep0, red0};
    };
    // 160 tuned iterations span the full variant race and the locked-in
    // winner; every one must match the serial reference bit for bit.
    const auto ref = run(ops::Backend::Serial, false, 1);
    EXPECT_EQ(run(ops::Backend::Threads, true, 160), ref)
        << "trial " << trial << " grid " << ny << "x" << nx;
    EXPECT_EQ(run(ops::Backend::SyclFlat, true, 160), ref)
        << "trial " << trial << " grid " << ny << "x" << nx;
  }
}

// ---------------------------------------------------------------------
// Out-of-order queue: random command-group chains with random footprints
// must produce bit-for-bit the same buffers as in-order execution - the
// dependency DAG may only reorder commands that commute.

TEST(Fuzz, RandomCommandChainsMatchInOrderExecution) {
  constexpr std::size_t kN = 128;
  constexpr int kBuffers = 4;
  struct Use {
    int buf;
    sycl::access_mode mode;
  };
  struct Cmd {
    std::vector<Use> uses;
    bool wait_event;
  };
  for (unsigned seed : {11u, 23u, 47u, 91u, 2024u}) {
    std::mt19937 rng(seed);
    std::vector<Cmd> cmds;
    for (int c = 0; c < 48; ++c) {
      Cmd cmd;
      const int k = 1 + static_cast<int>(rng() % 3);
      std::vector<int> picked;
      while (static_cast<int>(picked.size()) < k) {
        const int b = static_cast<int>(rng() % kBuffers);
        if (std::find(picked.begin(), picked.end(), b) == picked.end())
          picked.push_back(b);
      }
      for (int b : picked)
        cmd.uses.push_back({b, static_cast<sycl::access_mode>(rng() % 3)});
      cmd.wait_event = (rng() % 8) == 0;
      cmds.push_back(std::move(cmd));
    }

    auto run = [&](sycl::queue q) {
      std::vector<std::vector<long long>> bufs(
          kBuffers, std::vector<long long>(kN));
      for (int b = 0; b < kBuffers; ++b)
        for (std::size_t i = 0; i < kN; ++i)
          bufs[static_cast<std::size_t>(b)][i] =
              b * 1000 + static_cast<long long>(i);
      std::vector<long long*> ptr;
      for (auto& v : bufs) ptr.push_back(v.data());
      int tag = 0;
      for (const auto& cmd : cmds) {
        sycl::event ev = q.submit([&](sycl::handler& h) {
          for (const auto& u : cmd.uses)
            h.require(ptr[static_cast<std::size_t>(u.buf)], u.mode);
          h.parallel_for(
              sycl::range<1>(kN),
              [uses = cmd.uses, ps = ptr, tag](sycl::id<1> it) {
                const auto i = it[0];
                // Reads first, then writes: deterministic regardless of
                // the order uses were listed in.
                long long sum = 0;
                for (const auto& u : uses)
                  if (u.mode != sycl::access_mode::write)
                    sum += ps[static_cast<std::size_t>(u.buf)][i];
                for (const auto& u : uses) {
                  if (u.mode == sycl::access_mode::read) continue;
                  long long* out = ps[static_cast<std::size_t>(u.buf)];
                  const long long base =
                      u.mode == sycl::access_mode::write ? 0 : out[i];
                  out[i] = base * 3 + sum + tag * 17 +
                           static_cast<long long>(i);
                }
              });
        });
        if (cmd.wait_event) ev.wait();
        ++tag;
      }
      q.wait();
      return bufs;
    };

    const auto ooo = run(sycl::queue{});
    const auto ordered = run(sycl::queue{
        sycl::property_list{sycl::property::queue::in_order{}}});
    EXPECT_EQ(ooo, ordered) << "seed " << seed;
  }
}
