file(REMOVE_RECURSE
  "CMakeFiles/unstructured_edges.dir/unstructured_edges.cpp.o"
  "CMakeFiles/unstructured_edges.dir/unstructured_edges.cpp.o.d"
  "unstructured_edges"
  "unstructured_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unstructured_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
