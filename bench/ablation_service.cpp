// Ablation: the study service (docs/service.md).
//
// Four experiments on the multi-tenant daemon:
//   1. cold-vs-warm - the full bench-scale experiment matrix through a
//      fresh service (every cell computed) and again through a second
//      service sharing the persistent cache file (every cell a hash
//      lookup). The latency collapse is the content-addressed cache.
//   2. throughput-vs-clients - a fixed warm request mix served to an
//      increasing number of client sessions; reports wall time,
//      requests/s and the latency tail per client count. The p99 must
//      stay under SYCLPORT_SERVICE_P99_BUDGET_MS (default 2000).
//   3. dedup - a paused-admission burst of identical requests: the
//      admission controller must compute the key exactly once and
//      coalesce every other waiter onto the same blob.
//   4. fault parity - the same mix disarmed vs under an inert armed
//      plan (zero-probability svc.fail: the full bookkeeping path with
//      no injections) must produce identical result bytes; a firing
//      plan must turn into typed errors only, with the service still
//      serving afterwards.
//
// Emits ablation_service.csv next to the binary. Exit code is nonzero
// when any gate fails, so CI can run this as an assertion.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "runtime/env.hpp"
#include "runtime/fault/fault.hpp"
#include "study/service.hpp"
#include "study/session.hpp"
#include "study/study.hpp"

using namespace syclport;
namespace fault = syclport::rt::fault;

namespace {

/// Every supported cell of the study at bench scale.
std::vector<study::StudyRequest> full_matrix() {
  std::vector<study::StudyRequest> reqs;
  for (AppId a : kAllApps)
    for (PlatformId p : kAllPlatforms) {
      const auto vars = a == AppId::MGCFD ? study::mgcfd_variants(p)
                                          : study::structured_variants(p);
      for (const Variant& v : vars)
        reqs.push_back({a, p, v, study::StudyRequest::Scale::Bench});
    }
  return reqs;
}

struct MixResult {
  study::ServiceStats stats;
  double wall_s = 0.0;
  std::uint64_t typed_errors = 0;
};

/// Serve `per_client` requests from the matrix to `clients` concurrent
/// sessions (one thread each), deterministically strided so clients
/// overlap on keys.
MixResult run_mix(study::Service& svc,
                  const std::vector<study::StudyRequest>& matrix,
                  std::size_t clients, std::size_t per_client) {
  std::vector<std::uint64_t> errors(clients, 0);
  WallTimer t;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      study::Session session(svc, "bench-" + std::to_string(c));
      for (std::size_t i = 0; i < per_client; ++i) {
        try {
          (void)session.query(matrix[(c * 13 + i) % matrix.size()]);
        } catch (const study::service_error&) {
          errors[c] += 1;
        }
      }
    });
  for (auto& th : threads) th.join();
  MixResult r;
  r.wall_s = t.seconds();
  r.stats = svc.stats();
  for (auto e : errors) r.typed_errors += e;
  return r;
}

}  // namespace

int main() {
  const double p99_budget_ms = static_cast<double>(
      rt::env::get_long("SYCLPORT_SERVICE_P99_BUDGET_MS", 1, 1000000)
          .value_or(2000));
  const auto matrix = full_matrix();
  report::Table t({"experiment", "clients", "requests", "computed",
                   "coalesced", "cache_hits", "errors", "dedup_ratio",
                   "hit_rate", "wall_s", "rps", "p50_ms", "p95_ms", "p99_ms"});
  auto add_row = [&](const std::string& name, std::size_t clients,
                     const MixResult& r) {
    const auto& s = r.stats;
    t.add_row({name, std::to_string(clients), std::to_string(s.completed),
               std::to_string(s.computed), std::to_string(s.coalesced),
               std::to_string(s.cache_hits), std::to_string(s.errors),
               report::fmt(s.dedup_ratio(), 4),
               report::fmt(s.cache_hit_rate(), 4), report::fmt(r.wall_s, 4),
               report::fmt(r.wall_s > 0.0
                               ? static_cast<double>(s.completed) / r.wall_s
                               : 0.0,
                           1),
               report::fmt(s.p50_ms, 4), report::fmt(s.p95_ms, 4),
               report::fmt(s.p99_ms, 4)});
  };
  int failures = 0;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "GATE FAILED: " << what << "\n";
      failures += 1;
    }
  };

  const char* kCachePath = "ablation_service_cache.json";
  std::remove(kCachePath);

  // 1. cold vs warm through the persistent cache.
  {
    study::Service cold({kCachePath, 256, 50});
    const MixResult r = run_mix(cold, matrix, 4, matrix.size());
    add_row("cold", 4, r);
    cold.shutdown();  // publishes the cache image
    gate(r.typed_errors == 0, "cold pass had typed errors");

    study::Service warm({kCachePath, 256, 50});
    const MixResult w = run_mix(warm, matrix, 4, matrix.size());
    add_row("warm-persistent", 4, w);
    gate(w.stats.computed == 0, "warm pass recomputed cached cells");
    gate(w.stats.cache_hit_rate() > 0.9,
         "warm cache-hit rate not > 0.9 (got " +
             report::fmt(w.stats.cache_hit_rate(), 3) + ")");
    gate(w.stats.persistent_hits > 0, "no hits came from the disk image");
    std::cout << "cold p99 " << report::fmt(r.stats.p99_ms, 3)
              << " ms -> warm p99 " << report::fmt(w.stats.p99_ms, 3)
              << " ms\n";
    warm.shutdown();
  }

  // 2. throughput vs client count on a pre-warmed in-memory service.
  for (const std::size_t clients : {1u, 4u, 16u, 64u, 128u}) {
    study::Service svc({"", 256, 50});
    {
      study::Session prewarm(svc, "prewarm");
      for (const auto& q : matrix) (void)prewarm.query(q);
    }
    const MixResult r = run_mix(svc, matrix, clients, 32);
    add_row("throughput", clients, r);
    gate(r.typed_errors == 0, "throughput mix had typed errors");
    gate(r.stats.p99_ms < p99_budget_ms,
         "p99 " + report::fmt(r.stats.p99_ms, 3) + " ms over budget " +
             report::fmt(p99_budget_ms, 0) + " ms at " +
             std::to_string(clients) + " clients");
    svc.shutdown();
  }

  // 3. duplicate burst: one compute, everyone else coalesced.
  {
    study::Service svc({"", 1024, 50});
    svc.pause_admission();
    constexpr std::size_t kWaiters = 512;
    std::vector<std::shared_ptr<study::Ticket>> tickets;
    for (std::size_t i = 0; i < kWaiters; ++i)
      tickets.push_back(svc.submit(matrix[0]));
    WallTimer timer;
    svc.resume_admission();
    for (auto& ticket : tickets) (void)ticket->wait();
    MixResult r;
    r.wall_s = timer.seconds();
    r.stats = svc.stats();
    add_row("dedup-burst", kWaiters, r);
    gate(r.stats.computed == 1, "duplicate burst computed more than once");
    gate(r.stats.coalesced == kWaiters - 1,
         "burst waiters not all coalesced");
    svc.shutdown();
  }

  // 4. fault-armed (inert) vs disarmed parity, then a firing plan.
  {
    study::Service disarmed({"", 256, 50});
    study::Session a(disarmed, "disarmed");
    const auto ra = a.query(matrix[0]);
    const MixResult rd = run_mix(disarmed, matrix, 8, 64);
    add_row("fault-disarmed", 8, rd);
    disarmed.shutdown();

    if (!fault::configure("1:svc.fail=0.0")) {
      gate(false, "inert fault plan rejected");
    }
    study::Service inert({"", 256, 50});
    study::Session b(inert, "armed-inert");
    const auto rb = b.query(matrix[0]);
    const MixResult ri = run_mix(inert, matrix, 8, 64);
    fault::clear();
    add_row("fault-armed-inert", 8, ri);
    inert.shutdown();
    gate(std::vector<unsigned char>(ra.bytes.begin(), ra.bytes.end()) ==
             std::vector<unsigned char>(rb.bytes.begin(), rb.bytes.end()),
         "armed-inert result bytes differ from disarmed");
    gate(ri.typed_errors == 0, "inert plan injected errors");

    if (!fault::configure("7:svc.fail=0.3x16")) {
      gate(false, "firing fault plan rejected");
    }
    study::Service firing({"", 256, 50});
    const MixResult rf = run_mix(firing, matrix, 8, 32);
    fault::clear();
    add_row("fault-armed-firing", 8, rf);
    gate(rf.stats.errors == rf.typed_errors,
         "service error count disagrees with client typed errors");
    // Degrade gracefully: after the plan is spent/cleared the service
    // still serves every cell.
    study::Session c(firing, "after-faults");
    bool alive = true;
    try {
      (void)c.query(matrix[1]);
    } catch (const study::service_error&) {
      alive = false;
    }
    add_row("fault-recovered", 1, {firing.stats(), 0.0, 0});
    gate(alive, "service wedged after fault plan");
    firing.shutdown();
  }

  t.render(std::cout);
  if (t.save_csv("ablation_service.csv"))
    std::cout << "\nwrote ablation_service.csv\n";
  if (failures != 0) {
    std::cerr << failures << " gate(s) failed\n";
    return 1;
  }
  return 0;
}
