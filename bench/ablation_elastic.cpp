// Ablation: cost and efficacy of the elastic recovery layer
// (docs/resilience.md "Elastic recovery").
//
// Two claims back the self-healing driver:
//
//   1. armed-but-no-failure parity - driving a step loop through
//      run_elastic (heartbeats off, shared kill rolls, watermark,
//      epoch wrapper) must stay within 2% of the identical loop driven
//      by plain mpi::run, both disarmed and under an armed-but-inert
//      rank.kill plan (parity >= 0.98 on both sides). Arming is
//      compared like-for-like because an armed plan also switches the
//      transport onto its seq+CRC path, a separate cost that
//      ablation_fault already accounts for.
//
//   2. bounded-cost recovery - under live seeded kills every recovered
//      run is bit-exact versus an unfailed run, and the rollback never
//      exceeds the checkpoint cadence (rollback_steps <= ckpt_every).
//
// Emits ablation_elastic.csv next to the binary; exits nonzero when
// either gate fails.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "minimpi/elastic.hpp"
#include "ops/dist.hpp"
#include "ops/dist_checkpoint.hpp"
#include "runtime/fault/fault.hpp"
#include "sycl/launch_log.hpp"

using namespace syclport;
namespace fault = rt::fault;
namespace dist = ops::dist;

namespace {

constexpr int kRanks = 4;
constexpr int kSteps = 12;
constexpr int kCkptEvery = 3;
constexpr std::size_t kGrid = 96;

/// One elastic Jacobi run; returns the canonical field (empty on
/// abort). Double-buffered with an elementwise copy back so the result
/// is bit-exact for any decomposition - shrink changes it mid-run.
std::vector<double> run_jacobi_elastic(const mpi::ElasticOptions& opts) {
  std::vector<double> out;
  mpi::run_elastic(kRanks, kSteps, opts, [&](mpi::Comm& comm,
                                             mpi::Epoch& ep) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> u(ctx, {kGrid, kGrid, 1}, 1),
        v(ctx, {kGrid, kGrid, 1}, 1);
    u.init([](std::size_t i, std::size_t j, std::size_t) {
      return 1.0 + 0.01 * static_cast<double>(i) +
             0.02 * static_cast<double>(j);
    });
    std::vector<dist::CkptField<double>> fields{{"u", &u}};
    if (ep.resuming()) dist::restore_canonical(ep.checkpoint_path(), fields);
    for (int s = ep.start_step(); s < kSteps; ++s) {
      u.exchange_halos();
      u.for_owned([&](std::size_t gi, std::size_t gj, std::size_t,
                      std::ptrdiff_t li, std::ptrdiff_t lj,
                      std::ptrdiff_t lk) {
        double x = u.field().at(li, lj, lk);
        if (gi > 0 && gi < kGrid - 1 && gj > 0 && gj < kGrid - 1)
          x = (x + u.field().at(li - 1, lj, lk) +
               u.field().at(li + 1, lj, lk) + u.field().at(li, lj - 1, lk) +
               u.field().at(li, lj + 1, lk)) /
              5.0;
        v.field().at(li, lj, lk) = x;
      });
      u.for_owned([&](std::size_t, std::size_t, std::size_t,
                      std::ptrdiff_t li, std::ptrdiff_t lj,
                      std::ptrdiff_t lk) {
        u.field().at(li, lj, lk) = v.field().at(li, lj, lk);
      });
      ep.step_done(s, [&] {
        dist::checkpoint_canonical(ep.checkpoint_path(), fields);
      });
    }
    auto canon = dist::gather_canonical(u);
    if (comm.rank() == 0) out = std::move(canon);
  });
  return out;
}

/// The identical step loop driven by plain mpi::run - the elastic
/// layer's overhead is the delta against this under the same arming.
void run_jacobi_plain(const std::string& ckpt_path) {
  mpi::run(kRanks, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> u(ctx, {kGrid, kGrid, 1}, 1),
        v(ctx, {kGrid, kGrid, 1}, 1);
    u.init([](std::size_t i, std::size_t j, std::size_t) {
      return 1.0 + 0.01 * static_cast<double>(i) +
             0.02 * static_cast<double>(j);
    });
    std::vector<dist::CkptField<double>> fields{{"u", &u}};
    for (int s = 0; s < kSteps; ++s) {
      u.exchange_halos();
      u.for_owned([&](std::size_t gi, std::size_t gj, std::size_t,
                      std::ptrdiff_t li, std::ptrdiff_t lj,
                      std::ptrdiff_t lk) {
        double x = u.field().at(li, lj, lk);
        if (gi > 0 && gi < kGrid - 1 && gj > 0 && gj < kGrid - 1)
          x = (x + u.field().at(li - 1, lj, lk) +
               u.field().at(li + 1, lj, lk) + u.field().at(li, lj - 1, lk) +
               u.field().at(li, lj + 1, lk)) /
              5.0;
        v.field().at(li, lj, lk) = x;
      });
      u.for_owned([&](std::size_t, std::size_t, std::size_t,
                      std::ptrdiff_t li, std::ptrdiff_t lj,
                      std::ptrdiff_t lk) {
        u.field().at(li, lj, lk) = v.field().at(li, lj, lk);
      });
      if ((s + 1) % kCkptEvery == 0)
        dist::checkpoint_canonical(ckpt_path, fields);
    }
    (void)dist::gather_canonical(u);
  });
}

template <typename Fn>
double median_seconds(int reps, Fn&& run) {
  std::vector<double> t;
  for (int i = 0; i < reps; ++i) {
    WallTimer w;
    run();
    t.push_back(w.seconds());
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

}  // namespace

int main() {
  report::Table t({"mode", "spec", "seed", "outcome", "kills", "epochs",
                   "max_rollback", "seconds"});
  int gate_failures = 0;

  mpi::ElasticOptions opts;
  opts.policy = mpi::Recovery::Shrink;
  opts.ckpt_every = kCkptEvery;
  opts.ckpt_path = "ablation_elastic_ckpt.bin";

  // Part 1: plain-loop vs elastic-driver parity, like-for-like under
  // each arming state (no kill ever fires; both sides pay the same
  // transport and the same checkpoint cadence).
  fault::clear();
  const std::vector<double> reference = run_jacobi_elastic(opts);
  const int reps = 7;
  const auto parity_pair = [&](const char* mode) {
    const double plain_s =
        median_seconds(reps, [&] { run_jacobi_plain(opts.ckpt_path); });
    const double elastic_s =
        median_seconds(reps, [&] { (void)run_jacobi_elastic(opts); });
    const double parity = plain_s / elastic_s;
    t.add_row({std::string(mode) + "-plain", "-", "-", "exact", "0", "1",
               "0", std::to_string(plain_s)});
    t.add_row({std::string(mode) + "-elastic", "-", "-", "exact", "0", "1",
               "0", std::to_string(elastic_s)});
    std::cout << mode << ": plain " << plain_s << " s, elastic " << elastic_s
              << " s, parity " << parity << "\n";
    if (parity < 0.98) {
      std::cerr << mode << " parity gate failed: " << parity << " < 0.98\n";
      ++gate_failures;
    }
  };
  parity_pair("disarmed");
  fault::reset_stats_for_testing();
  if (!fault::configure("1:rank.kill=0.0"))
    std::cerr << "inert plan rejected\n";
  parity_pair("armed-inert");
  fault::clear();

  // Part 2: seeded kill sweep - bit-exact recovery, bounded rollback.
  struct KillCase {
    mpi::Recovery policy;
    const char* spec;
  };
  const KillCase cases[] = {
      {mpi::Recovery::Shrink, "rank.kill=@4x1"},
      {mpi::Recovery::Shrink, "rank.kill=%5x2"},
      {mpi::Recovery::Respawn, "rank.kill=@4x1"},
      {mpi::Recovery::Respawn, "rank.kill=%5x2"},
  };
  for (const KillCase& c : cases) {
    for (const std::uint64_t seed : {7u, 8u, 9u}) {
      mpi::ElasticOptions armed = opts;
      armed.policy = c.policy;
      fault::reset_stats_for_testing();
      if (!fault::configure(std::to_string(seed) + ":" + c.spec)) {
        std::cerr << "bad spec " << c.spec << "\n";
        continue;
      }
      const std::size_t recs_before =
          sycl::launch_log::instance().recovery_snapshot().size();
      WallTimer w;
      const std::vector<double> got = run_jacobi_elastic(armed);
      const double secs = w.seconds();
      const auto kills = fault::stats().injected_at(fault::Site::RankKill);
      fault::clear();

      const auto recs = sycl::launch_log::instance().recovery_snapshot();
      int max_rollback = 0;
      for (std::size_t i = recs_before; i < recs.size(); ++i)
        max_rollback = std::max(max_rollback, recs[i].rollback_steps);
      const bool exact =
          got.size() == reference.size() &&
          std::memcmp(got.data(), reference.data(),
                      reference.size() * sizeof(double)) == 0;
      const bool bounded = max_rollback <= kCkptEvery;
      std::string outcome = !exact      ? "SILENT-CORRUPTION"
                            : !bounded  ? "ROLLBACK-UNBOUNDED"
                                        : "exact";
      if (outcome != "exact") ++gate_failures;
      t.add_row({std::string("kill-") + mpi::to_string(c.policy), c.spec,
                 std::to_string(seed), outcome, std::to_string(kills),
                 std::to_string(recs.size() - recs_before + 1),
                 std::to_string(max_rollback), std::to_string(secs)});
    }
  }
  std::remove(opts.ckpt_path.c_str());

  t.render(std::cout);
  if (t.save_csv("ablation_elastic.csv"))
    std::cout << "\nwrote ablation_elastic.csv\n";
  if (gate_failures != 0) {
    std::cerr << gate_failures << " gate failure(s)\n";
    return 1;
  }
  return 0;
}
