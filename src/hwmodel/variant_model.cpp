#include "hwmodel/variant_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace syclport::hw {

namespace {

[[nodiscard]] double log2_dist(double a, double b) {
  return std::abs(std::log2(std::max(a, 1.0)) - std::log2(std::max(b, 1.0)));
}

}  // namespace

double platform_distance(const Platform& a, const Platform& b) {
  double d = log2_dist(a.cores, b.cores);
  d += log2_dist(a.stream_bw_gbs, b.stream_bw_gbs);
  d += log2_dist(a.llc.bytes, b.llc.bytes);
  d += log2_dist(a.sub_group, b.sub_group);
  if (a.gpu != b.gpu) d += 8.0;
  return d;
}

std::string synthetic_fingerprint(const Platform& p) {
  // Mirror the measured-fingerprint fields: per-core L1 slice, a
  // per-core LLC share standing in for a private L2, the total LLC, and
  // the STREAM bandwidth quantized to whole log2(GB/s) steps exactly as
  // the runtime quantizes its Triad measurement.
  const int cores = std::max(1, p.cores);
  const long l1d = std::lround(p.l1.bytes / cores);
  const long l2 = std::lround(p.llc.bytes / cores);
  const long llc = std::lround(p.llc.bytes);
  const long triad_log2 = std::lround(std::log2(std::max(p.stream_bw_gbs, 1.0)));
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "cores=%d;l1d=%ld;l2=%ld;llc=%ld;triad_log2=%ld", cores, l1d,
                l2, llc, triad_log2);
  return buf;
}

double predicted_variant_speedup(const Platform& p,
                                 const rt::autotune::VariantParams& vp,
                                 double bytes_per_item) {
  // Per-item times in ns. The bandwidth term is the floor neither the
  // reference nor any variant can beat; the issue term is what register
  // tiling / vectorization / unrolling attack.
  const double bw = std::max(p.stream_bw_gbs * p.app_bw_frac, 1e-3);
  const double t_bw = bytes_per_item / bw;
  const double t_issue = 1.0 / std::max(p.issue_gitems, 1e-3);
  // Exposed ILP: vector lanes count fully up to the SIMD width (beyond
  // it they just split into more instructions); register rows and
  // unroll add ILP with diminishing returns - they overlap latency but
  // share the same issue ports.
  const double lanes = std::min<double>(vp.vec_width, std::max(1, p.sub_group));
  const double ilp =
      lanes * std::sqrt(static_cast<double>(vp.reg_tile * vp.unroll));
  const double t_ref = std::max(t_bw, t_issue);
  const double t_var = std::max(t_bw, t_issue / std::max(1.0, ilp));
  return t_ref / t_var;
}

}  // namespace syclport::hw
