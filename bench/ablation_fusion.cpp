// Ablation: cross-loop fusion / tiling headroom. OPS's lazy-execution
// tiling (Reguly et al.) fuses consecutive sweeps so intermediate
// arrays stay in cache; the paper's conclusion that "a single
// algorithmic variant ... will not be performance portable" (§4.4)
// includes exactly this kind of schedule transformation. This bench
// computes, from the recorded schedules, the traffic that fusion could
// eliminate: bytes written by one loop and re-read by the next before
// any other writer touches them.

#include <iostream>
#include <map>

#include "common/figures.hpp"
#include "core/report.hpp"

using namespace syclport;

namespace {

/// Upper bound on fusable traffic: for each consecutive pair of
/// interior loops, the overlap between the earlier loop's writes and
/// the later loop's reads (approximated at whole-loop granularity via
/// byte volumes; a name-level dependence analysis would need dat
/// identities, which the profiles deliberately do not carry).
double fusable_bytes(const std::vector<hw::LoopProfile>& profiles) {
  double saved = 0.0;
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    const auto& prev = profiles[i - 1];
    const auto& cur = profiles[i];
    if (prev.cls != hw::KernelClass::Interior ||
        cur.cls != hw::KernelClass::Interior)
      continue;
    // A producer-consumer pair can keep min(written, read) bytes in
    // cache: the write stream of the producer and the matching read of
    // the consumer both disappear.
    saved += 2.0 * std::min(prev.bytes_written, cur.bytes_read);
  }
  return saved;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: cross-loop fusion headroom ===\n\n";
  report::Table t({"app", "schedule bytes", "fusable (upper bound)",
                   "potential saving"});

  struct Case {
    AppId app;
    apps::RunSummary (*run)(const ops::Options&, apps::ProblemSize);
    apps::ProblemSize ps;
  };
  const Case cases[] = {
      {AppId::CloverLeaf2D, apps::run_cloverleaf2d, {{1536, 1536, 1}, 5}},
      {AppId::CloverLeaf3D, apps::run_cloverleaf3d, {{96, 96, 96}, 5}},
      {AppId::OpenSBLI_SA, apps::run_opensbli_sa, {{96, 96, 96}, 5}},
      {AppId::OpenSBLI_SN, apps::run_opensbli_sn, {{96, 96, 96}, 5}},
      {AppId::RTM, apps::run_rtm, {{128, 128, 128}, 5}},
      {AppId::Acoustic, apps::run_acoustic, {{128, 128, 128}, 5}},
  };
  for (const Case& c : cases) {
    ops::Options o;
    o.mode = ops::Mode::ModelOnly;
    const auto rs = c.run(o, c.ps);
    double total = 0.0;
    for (const auto& lp : rs.profiles) total += lp.total_bytes();
    const double fus = fusable_bytes(rs.profiles);
    t.add_row({std::string(to_string(c.app)),
               report::fmt(total / 1e9, 2) + " GB",
               report::fmt(fus / 1e9, 2) + " GB",
               report::fmt_percent(fus / total)});
  }
  t.render(std::cout);
  std::cout <<
      "\nStore-All's many producer-consumer pairs (derivative arrays\n"
      "written then immediately read) give it the largest fusion\n"
      "headroom - Store-None is, in effect, the manually fused variant,\n"
      "which is why the two formulations exist at all.\n";
  return 0;
}
