file(REMOVE_RECURSE
  "CMakeFiles/syclport_core.dir/factorize.cpp.o"
  "CMakeFiles/syclport_core.dir/factorize.cpp.o.d"
  "CMakeFiles/syclport_core.dir/pp_metric.cpp.o"
  "CMakeFiles/syclport_core.dir/pp_metric.cpp.o.d"
  "CMakeFiles/syclport_core.dir/report.cpp.o"
  "CMakeFiles/syclport_core.dir/report.cpp.o.d"
  "CMakeFiles/syclport_core.dir/statistics.cpp.o"
  "CMakeFiles/syclport_core.dir/statistics.cpp.o.d"
  "CMakeFiles/syclport_core.dir/support.cpp.o"
  "CMakeFiles/syclport_core.dir/support.cpp.o.d"
  "CMakeFiles/syclport_core.dir/types.cpp.o"
  "CMakeFiles/syclport_core.dir/types.cpp.o.d"
  "libsyclport_core.a"
  "libsyclport_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syclport_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
