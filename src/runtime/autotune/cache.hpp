#pragma once
/// \file autotune/cache.hpp
/// Persistent tuning cache: winning configurations keyed by kernel
/// identity, guarded by a device fingerprint. The file is flat,
/// line-oriented JSON (one kernel entry per line) so it is both
/// readable as JSON and parseable with nothing but line scans - no
/// JSON library in the runtime. docs/tuning.md specifies the format.

#include <optional>
#include <string>
#include <vector>

#include "runtime/autotune/config.hpp"

namespace syclport::rt::autotune {

struct CacheData {
  std::string fingerprint;  ///< machine that wrote the file
  /// One tuned kernel. `fp` is the fingerprint the winner was measured
  /// on - normally the file's own, but v3 files keep entries from other
  /// machines too (a shared cache on a heterogeneous cluster), and the
  /// transfer-learning seeder uses `fp` to rank donors by platform
  /// distance. Empty fp means "same as the file fingerprint".
  struct Entry {
    std::string key;
    Config config;
    std::string fp;
  };
  std::vector<Entry> entries;
};

/// Write `data` to `path` (atomically: a *uniquely named* temp file +
/// rename, the same publication path the checkpoint layer uses). Two
/// concurrent writers of the same path therefore never interleave
/// bytes in a shared side file - every published image is complete and
/// internally consistent; the last rename wins. Returns false on I/O
/// failure.
bool write_cache(const std::string& path, const CacheData& data);

/// Fold into `data` every entry of `other` whose (key, fp) identity
/// `data` does not already carry - the merge-on-load half of the
/// concurrent-rewrite story: a writer re-reads the file just before
/// rewriting it so winners persisted by another process (or another
/// service session) since its own load survive the rewrite. `data`'s
/// own entries always win a (key, fp) collision - they are this
/// writer's freshest measurements. Entries of `other` with an empty fp
/// inherit `other.fingerprint` first.
void merge_entries(CacheData& data, const CacheData& other);

/// write_cache with merge-on-load: reads `path` (ignoring unreadable /
/// invalid files), merges surviving foreign entries into a copy of
/// `data`, and publishes the union atomically.
bool write_cache_merged(const std::string& path, const CacheData& data);

/// Read `path`. nullopt when the file is missing, not the current
/// format version, or fails its content checksum (truncated, bit-
/// flipped, or tampered files are rejected wholesale - the caller
/// retunes rather than trust a damaged winner). Entries with
/// unparseable configs are dropped individually without perturbing the
/// checksum. Fingerprint checking is the caller's job (a mismatch is a
/// valid file for some other machine).
[[nodiscard]] std::optional<CacheData> read_cache(const std::string& path);

}  // namespace syclport::rt::autotune
