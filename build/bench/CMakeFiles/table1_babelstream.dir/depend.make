# Empty dependencies file for table1_babelstream.
# This may be replaced when dependencies are built.
