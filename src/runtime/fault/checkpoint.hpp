#pragma once
/// \file checkpoint.hpp
/// Type-erased checkpoint/restart core behind ops::checkpoint() and
/// op2::checkpoint(): a Snapshot registers named host-memory regions
/// (dat storage, time-step scalars) and round-trips them through a
/// CRC-tagged binary file written atomically (temp + rename), so a
/// checkpoint interrupted by the very faults it guards against never
/// replaces a good predecessor with a torn file.
///
/// Restore is all-or-nothing: the file is read and *fully* validated -
/// magic, version, per-region CRC, whole-file CRC, and an exact match
/// between the file's regions and the registered ones - before a
/// single registered byte is touched. A corrupt or mismatched
/// checkpoint therefore throws checkpoint_error and leaves the
/// application state exactly as it was (docs/resilience.md specifies
/// the format).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace syclport::rt::fault {

/// A temp-file name next to `path` that no concurrent writer of the
/// same `path` shares: `path + ".tmp.<pid>.<seq>"`. Every atomic-rename
/// publisher in the runtime (checkpoints, the tuning cache, the study
/// service's result cache) stages through this, so two processes - or
/// two threads - rewriting the same file never interleave bytes in a
/// shared side file; each rename publishes one complete image and the
/// last rename wins.
[[nodiscard]] std::string unique_temp_path(const std::string& path);

/// Write `bytes` to `path` atomically: staged to a unique_temp_path()
/// side file, flushed, then renamed over `path`. Returns false (and
/// removes the side file) on any I/O failure; `path` then still holds
/// its previous content.
bool write_file_atomic(const std::string& path, std::string_view bytes);

/// Raised by Snapshot::save/restore: names the file and why it was
/// rejected (I/O failure, bad magic/version, CRC mismatch, region
/// mismatch). A failed restore guarantees no registered region was
/// modified.
class checkpoint_error : public std::runtime_error {
 public:
  checkpoint_error(std::string path_arg, const std::string& reason)
      : std::runtime_error("checkpoint '" + path_arg + "': " + reason),
        path(std::move(path_arg)) {}
  std::string path;
};

class Snapshot {
 public:
  /// Register a region. `data` must stay valid for the Snapshot's
  /// lifetime; names must be unique (the restore match is by name).
  void add(std::string name, void* data, std::size_t bytes);

  [[nodiscard]] std::size_t regions() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept;

  /// Write every registered region to `path`: serialized to a side
  /// file, flushed, then renamed over `path`, so concurrent crashes
  /// leave either the old checkpoint or the new one - never a torn
  /// mix. Throws checkpoint_error on I/O failure.
  void save(const std::string& path) const;

  /// Validate `path` completely, then copy its payloads into the
  /// registered regions. Throws checkpoint_error (before any region is
  /// written) when the file is missing, truncated, corrupt, of a
  /// foreign version, or its regions do not exactly match the
  /// registered names and sizes.
  void restore(const std::string& path);

 private:
  struct Region {
    std::string name;
    void* data = nullptr;
    std::size_t bytes = 0;
  };
  std::vector<Region> regions_;
};

}  // namespace syclport::rt::fault
