// Figure 7 reproduction: runtime of the six structured-mesh
// applications on the Altra platform across programming-model
// variants (see DESIGN.md experiment index).

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::structured_figure(
      std::cout, runner, PlatformId::Altra,
      "Figure 7: structured-mesh runtimes, " +
          std::string(to_string(PlatformId::Altra)),
      "fig7_structured_altra");
  return 0;
}
