// Google-benchmark microbenchmarks of the *functional* execution layer:
// the host-side cost of the miniSYCL executor, the OPS backends, the
// fiber-based barrier machinery and the OP2 strategies. These measure
// this repository's own runtime (not the modeled platforms) and guard
// against regressions in the simulation infrastructure itself.

#include <benchmark/benchmark.h>

#include <vector>

#include "apps/mgcfd/mesh.hpp"
#include "op2/op2.hpp"
#include "ops/ops.hpp"
#include "runtime/fiber.hpp"
#include "stream/babelstream.hpp"

namespace ops = syclport::ops;
namespace op2 = syclport::op2;
namespace rt = syclport::rt;

namespace {

void BM_StreamTriad(benchmark::State& state, ops::Backend backend) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ops::Options o;
  o.backend = backend;
  o.record = false;
  ops::Context ctx(o);
  ops::Block grid(ctx, "g", 1, {n, 1, 1});
  ops::Dat<double> a(grid, "a", 1, 0), b(grid, "b", 1, 0), c(grid, "c", 1, 0);
  b.fill(1.0);
  c.fill(2.0);
  for (auto _ : state) {
    ops::par_loop(ctx, {"triad"}, grid, ops::Range::all(grid),
                  [](ops::ACC<double> aa, ops::ACC<double> bb,
                     ops::ACC<double> cc) { aa(0) = bb(0) + 0.4 * cc(0); },
                  ops::arg(a, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S_PT, ops::Acc::R),
                  ops::arg(c, ops::S_PT, ops::Acc::R));
    benchmark::DoNotOptimize(a.at(0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 24);
}

void BM_FiberBarrierGroup(benchmark::State& state) {
  const auto wg = static_cast<std::size_t>(state.range(0));
  std::vector<double> scratch(wg);
  for (auto _ : state) {
    rt::run_barrier_group(wg, [&](std::size_t i) {
      scratch[i] = static_cast<double>(i);
      rt::group_barrier();
      benchmark::DoNotOptimize(scratch[(i + 1) % wg]);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wg));
}

void BM_SyclNdRangeLaunch(benchmark::State& state) {
  sycl::queue q;
  std::vector<double> v(4096);
  double* p = v.data();
  for (auto _ : state) {
    q.parallel_for(sycl::nd_range<1>(sycl::range<1>(4096),
                                     sycl::range<1>(64)),
                   [=](sycl::nd_item<1> it) {
                     p[it.get_global_id(0)] += 1.0;
                   });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}

void BM_Op2FluxStrategy(benchmark::State& state, syclport::Strategy s) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(16, 14, 10, 1);
  op2::Options o;
  o.strategy = s;
  o.record = false;
  op2::Context ctx(o);
  op2::Dat<double> w(*mesh.levels[0].edges, 1, "w");
  op2::Dat<double> f(*mesh.levels[0].nodes, 5, "f");
  w.fill(0.5);
  for (auto _ : state) {
    op2::par_loop(ctx, {"flux"}, *mesh.levels[0].edges,
                  [](const double* ww, op2::Inc<double> a,
                     op2::Inc<double> b) {
                    for (int c = 0; c < 5; ++c) {
                      a.add(c, ww[0]);
                      b.add(c, -ww[0]);
                    }
                  },
                  op2::arg_direct(w, op2::Acc::R),
                  op2::arg_inc(f, *mesh.levels[0].e2n, 0),
                  op2::arg_inc(f, *mesh.levels[0].e2n, 1));
    benchmark::DoNotOptimize(f.at(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mesh.fine_edges()));
}

void BM_PlanBuild(benchmark::State& state, syclport::Strategy s) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(24, 20, 12, 1);
  for (auto _ : state) {
    auto plan = op2::build_plan(*mesh.levels[0].e2n, s, 256);
    benchmark::DoNotOptimize(plan.nelems);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_StreamTriad, serial, ops::Backend::Serial)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_StreamTriad, threads, ops::Backend::Threads)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_StreamTriad, sycl_flat, ops::Backend::SyclFlat)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_StreamTriad, sycl_nd, ops::Backend::SyclNd)->Arg(1 << 16);
BENCHMARK(BM_FiberBarrierGroup)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_SyclNdRangeLaunch);
BENCHMARK_CAPTURE(BM_Op2FluxStrategy, atomics, syclport::Strategy::Atomics);
BENCHMARK_CAPTURE(BM_Op2FluxStrategy, global, syclport::Strategy::GlobalColor);
BENCHMARK_CAPTURE(BM_Op2FluxStrategy, hierarchical,
                  syclport::Strategy::Hierarchical);
BENCHMARK_CAPTURE(BM_PlanBuild, global, syclport::Strategy::GlobalColor);
BENCHMARK_CAPTURE(BM_PlanBuild, hierarchical,
                  syclport::Strategy::Hierarchical);

BENCHMARK_MAIN();
