#pragma once
/// \file renumber.hpp
/// Mesh-ordering utilities. The paper notes the atomics strategy gets
/// its locality from "a good mesh ordering" (§4.3): adjacent edges
/// executed on adjacent work-items touch adjacent vertices. These
/// helpers produce that ordering - sort elements by their minimum
/// mapped target - and apply the permutation to maps and dats.

#include <algorithm>
#include <numeric>
#include <vector>

#include "op2/dat.hpp"
#include "op2/set.hpp"

namespace syclport::op2 {

/// Permutation that orders elements of map.from() by ascending minimum
/// mapped target (stable): perm[new_position] = old_element.
[[nodiscard]] inline std::vector<int> order_by_min_target(const Map& map) {
  const std::size_t n = map.from().size();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  auto key = [&](int e) {
    int mn = map.at(static_cast<std::size_t>(e), 0);
    for (int i = 1; i < map.arity(); ++i)
      mn = std::min(mn, map.at(static_cast<std::size_t>(e), i));
    return mn;
  };
  std::stable_sort(perm.begin(), perm.end(),
                   [&](int a, int b) { return key(a) < key(b); });
  return perm;
}

/// Reorder the rows of `map` so that new row r is old row perm[r].
inline void permute_map(Map& map, const std::vector<int>& perm) {
  const std::size_t n = map.from().size();
  std::vector<int> old(n * static_cast<std::size_t>(map.arity()));
  for (std::size_t e = 0; e < n; ++e)
    for (int i = 0; i < map.arity(); ++i)
      old[e * static_cast<std::size_t>(map.arity()) +
          static_cast<std::size_t>(i)] = map.at(e, i);
  for (std::size_t e = 0; e < n; ++e)
    for (int i = 0; i < map.arity(); ++i)
      map.at(e, i) = old[static_cast<std::size_t>(perm[e]) *
                             static_cast<std::size_t>(map.arity()) +
                         static_cast<std::size_t>(i)];
}

/// Reorder a dat on the same set with the same permutation.
template <typename T>
void permute_dat(Dat<T>& dat, const std::vector<int>& perm) {
  const std::size_t n = dat.set().size();
  const auto dim = static_cast<std::size_t>(dat.dim());
  std::vector<T> old(n * dim);
  for (std::size_t e = 0; e < n; ++e)
    for (std::size_t c = 0; c < dim; ++c)
      old[e * dim + c] = dat.at(e, static_cast<int>(c));
  for (std::size_t e = 0; e < n; ++e)
    for (std::size_t c = 0; c < dim; ++c)
      dat.at(e, static_cast<int>(c)) =
          old[static_cast<std::size_t>(perm[e]) * dim + c];
}

}  // namespace syclport::op2
