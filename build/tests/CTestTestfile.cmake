# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sycl[1]_include.cmake")
include("/root/repo/build/tests/test_hwmodel[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_op2[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_mgcfd[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_ops_dist[1]_include.cmake")
include("/root/repo/build/tests/test_sycl_groups[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_loop_chain[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_op2_dist[1]_include.cmake")
