#pragma once
/// \file stream.hpp
/// Non-temporal (streaming) store helpers for the bandwidth-bound fill
/// and copy paths. A cached store to a line the kernel will never read
/// first costs a read-for-ownership: the line is fetched from memory
/// just to be overwritten, turning a pure write stream into write +
/// hidden read traffic. Non-temporal stores bypass the cache and the
/// RFO, which is why BabelStream-style fills/copies care.
///
/// The fast path is gated three ways: compile-time ISA support
/// (SSE2 + x86-64), the SYCLPORT_STREAM_STORES knob, and natural
/// alignment of the destination. Every helper degrades to the plain
/// cached loop when any gate fails, so callers never need a fallback.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>

#include "runtime/mem/mem.hpp"
#include "runtime/thread_pool.hpp"

#if defined(__SSE2__) && defined(__x86_64__)
#include <emmintrin.h>
#define SYCLPORT_NT_STORES 1
#endif

namespace syclport::rt::mem {

/// True when this build can emit non-temporal stores at all.
[[nodiscard]] constexpr bool stream_stores_supported() noexcept {
#if defined(SYCLPORT_NT_STORES)
  return true;
#else
  return false;
#endif
}

/// Store `v` to `*dst` bypassing the cache when the ISA allows it and
/// the value is a naturally-aligned 4- or 8-byte scalar; plain store
/// otherwise. The caller must issue stream_fence() before other
/// threads read the data.
template <typename T>
inline void stream_store(T* dst, T v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
#if defined(SYCLPORT_NT_STORES)
  if constexpr (sizeof(T) == 8 && alignof(T) == 8) {
    _mm_stream_si64(reinterpret_cast<long long*>(dst),
                    std::bit_cast<long long>(v));
    return;
  } else if constexpr (sizeof(T) == 4 && alignof(T) == 4) {
    _mm_stream_si32(reinterpret_cast<int*>(dst), std::bit_cast<int>(v));
    return;
  }
#endif
  *dst = v;
}

/// Order non-temporal stores before subsequent loads/stores become
/// visible. No-op on builds without the NT path.
inline void stream_fence() noexcept {
#if defined(SYCLPORT_NT_STORES)
  _mm_sfence();
#endif
}

namespace detail {

/// Whether the NT path applies to this destination: knob on, ISA
/// present, scalar streamable, pointer naturally aligned.
template <typename T>
[[nodiscard]] inline bool nt_eligible(const T* dst) noexcept {
  if constexpr (!stream_stores_supported() ||
                !(sizeof(T) == 8 || sizeof(T) == 4)) {
    return false;
  } else {
    return stream_stores_active() &&
           reinterpret_cast<std::uintptr_t>(dst) % sizeof(T) == 0;
  }
}

}  // namespace detail

/// Fill `[dst, dst+n)` with `v` on the calling thread, streaming when
/// eligible.
template <typename T>
inline void fill_serial(T* dst, std::size_t n, T v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  if (detail::nt_eligible(dst)) {
    for (std::size_t i = 0; i < n; ++i) stream_store(dst + i, v);
    stream_fence();
  } else {
    std::fill(dst, dst + n, v);
  }
}

/// Copy `bytes` from `src` to `dst` (non-overlapping) on the calling
/// thread, streaming the stores in 8-byte words when both pointers are
/// 8-byte aligned; memcpy tail/fallback otherwise.
inline void copy_serial(void* dst, const void* src, std::size_t bytes) noexcept {
  auto* d8 = static_cast<std::uint64_t*>(dst);
  const auto* s8 = static_cast<const std::uint64_t*>(src);
  if (detail::nt_eligible(d8) &&
      reinterpret_cast<std::uintptr_t>(src) % 8 == 0) {
    const std::size_t words = bytes / 8;
    for (std::size_t i = 0; i < words; ++i) {
      std::uint64_t w;
      std::memcpy(&w, s8 + i, 8);
      stream_store(d8 + i, w);
    }
    stream_fence();
    if (const std::size_t tail = bytes % 8; tail != 0)
      std::memcpy(d8 + words, s8 + words, tail);
  } else {
    std::memcpy(dst, src, bytes);
  }
}

namespace detail {
/// Below this many bytes the pool fan-out costs more than it saves.
inline constexpr std::size_t kParallelBytesThreshold = 256u << 10;
}  // namespace detail

/// Fill `[dst, dst+n)` with `v` across the thread-pool workers under a
/// static schedule (the placement-preserving topology), streaming when
/// eligible. Small fills run serially on the caller. Records the
/// traffic in MemStats::stream_fill_bytes.
template <typename T>
inline void parallel_fill(T* dst, std::size_t n, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::note_stream_fill(n * sizeof(T));
  if (n * sizeof(T) < detail::kParallelBytesThreshold ||
      serial_execution_forced()) {
    fill_serial(dst, n, v);
    return;
  }
  ScopedLaunchParams params(Schedule::Static, std::nullopt);
  ThreadPool::global().parallel_for(
      n, [&](std::size_t b, std::size_t e) { fill_serial(dst + b, e - b, v); });
}

/// Copy `bytes` from `src` to `dst` (non-overlapping) across the
/// thread-pool workers under a static schedule, streaming when
/// eligible. Records the traffic in MemStats::stream_copy_bytes.
inline void parallel_copy(void* dst, const void* src, std::size_t bytes) {
  detail::note_stream_copy(bytes);
  if (bytes < detail::kParallelBytesThreshold || serial_execution_forced()) {
    copy_serial(dst, src, bytes);
    return;
  }
  ScopedLaunchParams params(Schedule::Static, std::nullopt);
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  // Chunk on 64-byte boundaries so every sub-copy keeps the base
  // alignment and stays on the NT path.
  const std::size_t lines = bytes / 64;
  ThreadPool::global().parallel_for(lines, [&](std::size_t b, std::size_t e) {
    copy_serial(d + b * 64, s + b * 64, (e - b) * 64);
  });
  if (const std::size_t tail = bytes % 64; tail != 0)
    copy_serial(d + lines * 64, s + lines * 64, tail);
}

}  // namespace syclport::rt::mem
