#pragma once
/// \file rtm.hpp
/// RTM proxy: the forward pass of a Reverse Time Migration application
/// (paper §3, item 3). Second-order-in-time, 8th-order-in-space FP32
/// acoustic wave propagation with a 25-point star stencil over a
/// precomputed squared-velocity model, plus per-step source injection.
/// Sensitive to cache locality (9 planes must stay resident) and, under
/// MPI, carries radius-4 halos - both effects the paper highlights.

#include "apps/common.hpp"
#include "ops/ops.hpp"

namespace syclport::apps {

/// Paper configuration: 320^3, 10 time iterations, single precision.
[[nodiscard]] inline ProblemSize rtm_paper() { return {{320, 320, 320}, 10}; }

/// Reduced configuration for functional validation runs.
[[nodiscard]] inline ProblemSize rtm_small() { return {{28, 28, 28}, 6}; }

/// Run the RTM forward pass; checksum is the final wavefield's interior
/// sum of squares (finite and non-zero on a stable configuration).
[[nodiscard]] RunSummary run_rtm(const ops::Options& opt, ProblemSize ps);

}  // namespace syclport::apps
