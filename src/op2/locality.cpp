#include "op2/locality.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "op2/plan.hpp"

namespace syclport::op2 {

GatherStats measure_gather(const Map& map, int dat_dim,
                           std::size_t elem_bytes,
                           const std::vector<int>& order, std::size_t wave,
                           double line_bytes, Layout layout) {
  GatherStats gs;
  if (order.empty()) return gs;
  const std::size_t payload = static_cast<std::size_t>(dat_dim) * elem_bytes;
  const auto line = static_cast<std::size_t>(line_bytes);
  const std::size_t ntargets = map.to().size();
  const auto dim = static_cast<std::size_t>(dat_dim);

  // Lines target t's components occupy under the dat's physical layout.
  auto touch_lines = [&](int t, auto&& fn) {
    if (layout == Layout::AoS) {
      const std::size_t first = static_cast<std::size_t>(t) * payload;
      for (std::size_t b = first / line; b <= (first + payload - 1) / line;
           ++b)
        fn(b);
      return;
    }
    for (std::size_t c = 0; c < dim; ++c) {
      const std::size_t slot = layout_index(
          layout, static_cast<std::size_t>(t), c, ntargets, dim);
      fn(slot * elem_bytes / line);
    }
  };

  double total_line_bytes = 0.0;
  double total_ideal_bytes = 0.0;
  std::size_t nwaves = 0;
  std::unordered_set<std::size_t> lines;
  std::unordered_set<int> targets;

  // Reuse-distance bookkeeping: per line, the value of the traffic
  // clock at its last touch; a touch with (clock - last) beyond a cache
  // capacity is a miss for that capacity (recency approximates stack
  // distance for streaming access patterns).
  std::unordered_map<std::size_t, double> last_touch;
  double clock = 0.0;
  std::array<double, hw::kGatherCachePoints.size()> miss_bytes{};

  for (std::size_t w = 0; w < order.size(); w += wave) {
    const std::size_t end = std::min(order.size(), w + wave);
    lines.clear();
    targets.clear();
    for (std::size_t i = w; i < end; ++i) {
      const auto e = static_cast<std::size_t>(order[i]);
      for (int m = 0; m < map.arity(); ++m) {
        const int t = map.at(e, m);
        targets.insert(t);
        touch_lines(t, [&](std::size_t b) { lines.insert(b); });
      }
    }
    // Per-wave line touches feed the reuse profile: one touch per
    // unique line per wave (intra-wave duplicates coalesce in the MSHR).
    for (std::size_t b : lines) {
      auto [it, inserted] = last_touch.try_emplace(b, -1.0);
      for (std::size_t c = 0; c < hw::kGatherCachePoints.size(); ++c) {
        if (inserted || clock - it->second > hw::kGatherCachePoints[c])
          miss_bytes[c] += line_bytes;
      }
      it->second = clock;
      clock += line_bytes;
    }
    total_line_bytes += static_cast<double>(lines.size()) * line_bytes;
    total_ideal_bytes += static_cast<double>(targets.size() * payload);
    ++nwaves;
  }

  gs.avg_bytes_per_wave = total_line_bytes / static_cast<double>(nwaves);
  gs.ideal_bytes_per_wave = total_ideal_bytes / static_cast<double>(nwaves);

  // Unique footprint over the whole sweep: every referenced target once.
  std::unordered_set<int> all_targets;
  for (int e : order)
    for (int m = 0; m < map.arity(); ++m)
      all_targets.insert(map.at(static_cast<std::size_t>(e), m));
  const double unique_bytes =
      static_cast<double>(all_targets.size() * payload);
  if (unique_bytes > 0.0) {
    gs.line_factor = std::max(1.0, total_line_bytes / unique_bytes);
    for (std::size_t c = 0; c < hw::kGatherCachePoints.size(); ++c)
      gs.factor_at[c] = std::max(1.0, miss_bytes[c] / unique_bytes);
  }
  return gs;
}

std::vector<int> execution_order(const Plan& plan) {
  std::vector<int> order;
  order.reserve(plan.nelems);
  switch (plan.strategy) {
    case Strategy::GlobalColor:
      for (const auto& elems : plan.elements_by_colour)
        order.insert(order.end(), elems.begin(), elems.end());
      break;
    case Strategy::Hierarchical:
      // Within a block, work-items execute one intra-colour per barrier
      // phase, so a GPU wave sees same-colour (strided) edges - this
      // is what degrades hierarchical locality below atomics while
      // keeping it far better than global colouring (paper §4.3).
      for (const auto& blocks : plan.blocks_by_colour)
        for (int blk : blocks) {
          const std::size_t b = static_cast<std::size_t>(blk) * plan.block_size;
          const std::size_t e_end = std::min(plan.nelems, b + plan.block_size);
          for (int c = 0; c < plan.max_intra_colours; ++c)
            for (std::size_t e = b; e < e_end; ++e)
              if (plan.intra_colour[e] == c)
                order.push_back(static_cast<int>(e));
        }
      break;
    default:
      for (std::size_t e = 0; e < plan.nelems; ++e)
        order.push_back(static_cast<int>(e));
      break;
  }
  return order;
}

}  // namespace syclport::op2
