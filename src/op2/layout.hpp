#pragma once
/// \file layout.hpp
/// Physical data layouts for OP2 dats. A dat is logically (element x
/// component); the layout axis picks where each (e, c) value lives:
///   - AoS:   e*dim + c          - contiguous per element, the gather-
///            friendly layout GPU indirect reads want (one line per
///            element payload);
///   - SoA:   c*n + e            - contiguous per component, the layout
///            vectorizing CPU sweeps want (unit-stride lanes);
///   - AoSoA: block-of-W elements per component - SoA lanes inside an
///            AoS super-element, padded to a multiple of W (the
///            compromise layout of Lawson-style parametrized kernels).
/// The autotuner races this axis per launch site (`layout=` in the
/// tune-cache wire format); SYCLPORT_LAYOUT sets the process default.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace syclport::op2 {

enum class Layout : std::uint8_t { AoS, SoA, AoSoA };

/// AoSoA inner block width (elements per sub-block). Eight doubles is
/// one cache line: a full line per component sub-block keeps the padded
/// layout line-aligned for the gather model.
inline constexpr std::size_t kAoSoAWidth = 8;

[[nodiscard]] constexpr std::string_view to_string(Layout l) noexcept {
  switch (l) {
    case Layout::AoS: return "aos";
    case Layout::SoA: return "soa";
    case Layout::AoSoA: return "aosoa";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<Layout> parse_layout(
    std::string_view s) noexcept {
  if (s == "aos") return Layout::AoS;
  if (s == "soa") return Layout::SoA;
  if (s == "aosoa") return Layout::AoSoA;
  return std::nullopt;
}

/// Physical storage slots for n elements of `dim` components (AoSoA
/// pads the element count to a multiple of kAoSoAWidth).
[[nodiscard]] constexpr std::size_t layout_slots(Layout l, std::size_t n,
                                                 std::size_t dim) noexcept {
  if (l == Layout::AoSoA)
    return ((n + kAoSoAWidth - 1) / kAoSoAWidth) * kAoSoAWidth * dim;
  return n * dim;
}

/// Physical slot of logical value (e, c) under layout `l` with `n`
/// logical elements.
[[nodiscard]] constexpr std::size_t layout_index(Layout l, std::size_t e,
                                                 std::size_t c, std::size_t n,
                                                 std::size_t dim) noexcept {
  switch (l) {
    case Layout::AoS: return e * dim + c;
    case Layout::SoA: return c * n + e;
    case Layout::AoSoA:
      return (e / kAoSoAWidth) * (kAoSoAWidth * dim) + c * kAoSoAWidth +
             e % kAoSoAWidth;
  }
  return e * dim + c;
}

/// Process-default layout for newly created dats: SYCLPORT_LAYOUT when
/// set and valid, AoS otherwise (the seed behaviour).
[[nodiscard]] Layout default_layout();

}  // namespace syclport::op2
