#include "hwmodel/energy.hpp"

#include <stdexcept>

namespace syclport::hw {

PowerSpec power_spec(PlatformId p) {
  switch (p) {
    case PlatformId::A100: return {250.0, 0.75};
    case PlatformId::MI250X: return {280.0, 0.80};
    case PlatformId::Max1100: return {300.0, 0.75};
    case PlatformId::Xeon8360Y: return {500.0, 0.85};
    case PlatformId::GenoaX: return {720.0, 0.85};
    case PlatformId::Altra: return {210.0, 0.80};
  }
  throw std::invalid_argument("unknown platform id");
}

double run_energy_j(PlatformId p, double runtime_s) {
  const PowerSpec ps = power_spec(p);
  return ps.tdp_w * ps.bw_bound_frac * runtime_s;
}

double gb_per_joule(PlatformId p, double useful_bytes, double runtime_s) {
  const double j = run_energy_j(p, runtime_s);
  return j > 0.0 ? useful_bytes / 1e9 / j : 0.0;
}

}  // namespace syclport::hw
