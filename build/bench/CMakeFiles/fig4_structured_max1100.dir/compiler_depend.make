# Empty compiler generated dependencies file for fig4_structured_max1100.
# This may be replaced when dependencies are built.
