#pragma once
/// \file dist.hpp
/// A genuinely distributed OPS backend over mini-MPI: every rank owns a
/// block of the grid with ghost layers, par_loops execute rank-locally,
/// reads through nonzero stencils trigger face halo exchanges first,
/// and global reductions combine across ranks - the owner-compute
/// execution model of OPS-MPI (paper §3), running on real messages
/// rather than the shared-memory shortcut the modeling backends use.
///
/// Scope: interior sweeps and global reductions over fields whose halo
/// depth covers the stencils used (the structure all of this study's
/// interior kernels share). Kernels receive the same ACC accessors as
/// the shared-memory backends, so kernel code is reused verbatim.

#include <algorithm>
#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/reducer.hpp"
#include "hwmodel/tuning_priors.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/halo.hpp"
#include "ops/arg.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/env.hpp"
#include "sycl/queue.hpp"

namespace syclport::ops::dist {

/// Per-rank execution context.
class DistContext {
 public:
  DistContext(mpi::Comm& comm, int dims)
      : comm_(&comm), cart_(comm.rank(), comm.size(), dims), dims_(dims) {}

  [[nodiscard]] mpi::Comm& comm() const { return *comm_; }
  [[nodiscard]] const mpi::CartDecomp& cart() const { return cart_; }
  [[nodiscard]] int dims() const { return dims_; }

  /// Rank-local out-of-order queue; par_loop_overlap submits the
  /// interior sweep through it so the sweep runs concurrently with the
  /// halo receives on this rank's thread.
  [[nodiscard]] sycl::queue& queue() { return queue_; }

 private:
  mpi::Comm* comm_;
  mpi::CartDecomp cart_;
  int dims_;
  sycl::queue queue_;
};

/// A distributed field: the rank-local block of a global grid, with
/// ghost layers deep enough for the stencils applied to it.
template <typename T>
class DistDat {
 public:
  DistDat(DistContext& ctx, std::array<std::size_t, 3> global, int halo)
      : ctx_(&ctx), global_(global), halo_(halo) {
    field_.dims = ctx.dims();
    field_.halo = halo;
    for (int d = 0; d < ctx.dims(); ++d) {
      auto [b, e] = ctx.cart().owned(d, global[static_cast<std::size_t>(d)]);
      begin_[static_cast<std::size_t>(d)] = b;
      field_.local[static_cast<std::size_t>(d)] = e - b;
    }
    field_.allocate();
  }

  /// Fill the owned interior from a function of *global* coordinates.
  void init(const std::function<T(std::size_t, std::size_t, std::size_t)>& f) {
    for_owned([&](std::size_t gi, std::size_t gj, std::size_t gk,
                  std::ptrdiff_t li, std::ptrdiff_t lj, std::ptrdiff_t lk) {
      field_.at(li, lj, lk) = f(gi, gj, gk);
    });
  }

  /// Iterate owned points with both global and local coordinates.
  template <typename Fn>
  void for_owned(Fn&& fn) {
    const auto n0 = field_.local[0];
    const auto n1 = ctx_->dims() >= 2 ? field_.local[1] : 1;
    const auto n2 = ctx_->dims() >= 3 ? field_.local[2] : 1;
    for (std::size_t i = 0; i < n0; ++i)
      for (std::size_t j = 0; j < n1; ++j)
        for (std::size_t k = 0; k < n2; ++k)
          fn(begin_[0] + i, begin_[1] + j, begin_[2] + k,
             static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j),
             static_cast<std::ptrdiff_t>(k));
  }

  /// Exchange ghost layers with the Cartesian neighbours (collective).
  void exchange_halos() {
    mpi::exchange_halos(ctx_->comm(), ctx_->cart(), field_);
  }

  [[nodiscard]] mpi::LocalField<T>& field() { return field_; }
  [[nodiscard]] DistContext& ctx() const { return *ctx_; }
  [[nodiscard]] int halo() const { return halo_; }
  [[nodiscard]] const std::array<std::size_t, 3>& global() const {
    return global_;
  }
  [[nodiscard]] const std::array<std::size_t, 3>& begin() const {
    return begin_;
  }

  /// Sum of the owned interior across all ranks (collective).
  [[nodiscard]] double global_sum() {
    double local = 0.0;
    for_owned([&](std::size_t, std::size_t, std::size_t, std::ptrdiff_t li,
                  std::ptrdiff_t lj, std::ptrdiff_t lk) {
      local += static_cast<double>(field_.at(li, lj, lk));
    });
    return ctx_->comm().allreduce(local, mpi::Op::Sum);
  }

 private:
  DistContext* ctx_;
  std::array<std::size_t, 3> global_;
  std::array<std::size_t, 3> begin_{0, 0, 0};
  int halo_;
  mpi::LocalField<T> field_;
};

template <typename T>
struct DistArg {
  DistDat<T>* dat;
  Stencil st;
  Acc acc;
};

template <typename T>
[[nodiscard]] DistArg<T> arg(DistDat<T>& d, Stencil st, Acc a) {
  if (st.max_radius() > d.halo())
    throw std::invalid_argument("dist::arg: stencil exceeds halo depth");
  return {&d, st, a};
}

template <typename T>
struct DistRedArg {
  T* target;
  RedOp op;
};

template <typename T>
[[nodiscard]] DistRedArg<T> reduce(T& target, RedOp op) {
  return {&target, op};
}

namespace detail {

using Fn3 =
    std::function<void(std::ptrdiff_t, std::ptrdiff_t, std::ptrdiff_t)>;

/// A half-open box [lo, hi) in rank-local interior coordinates
/// (slowest dimension first; unused dimensions span [0, 1)).
struct Box {
  std::array<std::ptrdiff_t, 3> lo{0, 0, 0};
  std::array<std::ptrdiff_t, 3> hi{1, 1, 1};
};

/// Type-erased hook so par_loop can find the iteration space (the first
/// dat argument) without caring about T.
struct IterSpace {
  std::function<void(const Fn3&)> iterate;
  std::function<void(const Box&, const Fn3&)> iterate_box;
  int dims = 0;
  std::array<std::size_t, 3> local{1, 1, 1};
};

template <typename T>
struct DatBinder {
  DistDat<T>* dat;
  bool needs_halo;
  Acc acc = Acc::RW;

  void prepare() const {
    if (needs_halo) dat->exchange_halos();
  }

  /// Overlap path: post this dat's halo sends now; the matching
  /// receive+unpack is deferred into `finishers`.
  void begin_halo(std::vector<std::function<void()>>& finishers) const {
    if (!needs_halo) return;
    auto ex = std::make_shared<mpi::HaloExchange<T>>(
        dat->ctx().comm(), dat->ctx().cart(), dat->field());
    finishers.push_back([ex] { ex->finish(); });
  }

  /// Declare this dat's storage in a command group's footprint, so
  /// interior commands of different ranks (different storage) stay
  /// independent in the scheduler's DAG.
  void declare(sycl::handler& h) const {
    // Acc::W is OPS write semantics: not read before written, so it
    // registers as discard_write (same conflict behaviour as write,
    // but marks a pure write stream for the executor).
    const auto mode = acc == Acc::R   ? sycl::access_mode::read
                      : acc == Acc::W ? sycl::access_mode::discard_write
                                      : sycl::access_mode::read_write;
    h.require(static_cast<const void*>(dat->field().data.data()), mode);
  }
  [[nodiscard]] ACC<T> make(std::ptrdiff_t li, std::ptrdiff_t lj,
                            std::ptrdiff_t lk) const {
    auto& f = dat->field();
    if (f.dims == 1) return ACC<T>(&f.at(li), 1, 0, 0);
    if (f.dims == 2) {
      const auto s_mid = static_cast<std::ptrdiff_t>(f.padded(1));
      return ACC<T>(&f.at(li, lj), 1, s_mid, 0);
    }
    const auto s_mid = static_cast<std::ptrdiff_t>(f.padded(2));
    const auto s_slow = s_mid * static_cast<std::ptrdiff_t>(f.padded(1));
    return ACC<T>(&f.at(li, lj, lk), 1, s_mid, s_slow);
  }
  void finish(DistContext&) const {}
  void offer_iter(IterSpace& is) const {
    if (is.iterate) return;
    DistDat<T>* d = dat;
    is.iterate = [d](const auto& fn) {
      d->for_owned([&](std::size_t, std::size_t, std::size_t,
                       std::ptrdiff_t li, std::ptrdiff_t lj,
                       std::ptrdiff_t lk) { fn(li, lj, lk); });
    };
    is.iterate_box = [](const Box& bx, const Fn3& fn) {
      for (std::ptrdiff_t i = bx.lo[0]; i < bx.hi[0]; ++i)
        for (std::ptrdiff_t j = bx.lo[1]; j < bx.hi[1]; ++j)
          for (std::ptrdiff_t k = bx.lo[2]; k < bx.hi[2]; ++k) fn(i, j, k);
    };
    is.dims = d->field().dims;
    is.local = d->field().local;
  }
};

template <typename T>
struct RedBinder {
  T* target;
  RedOp op;
  std::shared_ptr<T> local = std::make_shared<T>();

  RedBinder(T* t, RedOp o) : target(t), op(o) {
    switch (op) {
      case RedOp::Sum: *local = T{}; break;
      case RedOp::Min: *local = std::numeric_limits<T>::max(); break;
      case RedOp::Max: *local = std::numeric_limits<T>::lowest(); break;
    }
  }
  void prepare() const {}
  void begin_halo(std::vector<std::function<void()>>&) const {}
  void declare(sycl::handler& h) const {
    h.require(static_cast<const void*>(local.get()),
              sycl::access_mode::read_write);
  }
  [[nodiscard]] Reducer<T> make(std::ptrdiff_t, std::ptrdiff_t,
                                std::ptrdiff_t) const {
    return Reducer<T>(local.get(), op);
  }
  void finish(DistContext& ctx) const {
    const T global = ctx.comm().allreduce(
        *local, op == RedOp::Sum   ? mpi::Op::Sum
                : op == RedOp::Min ? mpi::Op::Min
                                   : mpi::Op::Max);
    Reducer<T>(target, op).combine(global);
  }
  void offer_iter(IterSpace&) const {}
};

template <typename T>
DatBinder<T> make_binder(const DistArg<T>& a) {
  const bool reads_stencil =
      (a.acc == Acc::R || a.acc == Acc::RW) && a.st.max_radius() > 0;
  return {a.dat, reads_stencil, a.acc};
}

template <typename T>
RedBinder<T> make_binder(const DistRedArg<T>& a) {
  return RedBinder<T>(a.target, a.op);
}

/// Accumulate the boundary thickness the overlap split needs: the
/// widest read stencil per dimension. Stencil radii are fastest-first
/// while local coordinates are slowest-first, hence the flip.
template <typename T>
inline void accum_overlap(const DistArg<T>& a, int dims,
                          std::array<int, 3>& rad, bool& any_halo) {
  if (a.acc != Acc::R && a.acc != Acc::RW) return;
  const std::array<int, 3> r{a.st.radius_x, a.st.radius_y, a.st.radius_z};
  for (int d = 0; d < dims; ++d) {
    auto& slot = rad[static_cast<std::size_t>(dims - 1 - d)];
    slot = std::max(slot, r[static_cast<std::size_t>(d)]);
  }
  if (a.st.max_radius() > 0) any_halo = true;
}

template <typename T>
inline void accum_overlap(const DistRedArg<T>&, int, std::array<int, 3>&,
                          bool&) {}

}  // namespace detail

/// Distributed par_loop over the full interior of the global grid.
/// Collective: every rank must call it with the same arguments.
template <typename K, typename... Args>
void par_loop(DistContext& ctx, K&& kernel, Args... args) {
  auto binders = std::make_tuple(detail::make_binder(args)...);

  detail::IterSpace is;
  std::apply([&](const auto&... b) { (b.offer_iter(is), ...); }, binders);
  if (!is.iterate)
    throw std::invalid_argument("dist::par_loop: needs at least one dat arg");

  std::apply([](const auto&... b) { (b.prepare(), ...); }, binders);
  is.iterate([&](std::ptrdiff_t li, std::ptrdiff_t lj, std::ptrdiff_t lk) {
    std::apply([&](const auto&... b) { kernel(b.make(li, lj, lk)...); },
               binders);
  });
  std::apply([&](const auto&... b) { (b.finish(ctx), ...); }, binders);
}

/// Distributed par_loop with halo/compute overlap: the halo sends are
/// posted first, the sweep over points at stencil distance from the
/// block faces is submitted as an asynchronous command on the rank's
/// out-of-order queue, the receives are drained while it runs, and the
/// remaining boundary shell is swept once both have completed - the
/// classic overlapped structure of the OPS MPI backend. Point-for-point
/// identical to par_loop (each point computes from the same inputs);
/// cross-rank reductions may combine per-point contributions in a
/// different order.
///
/// Falls back to the blocking par_loop when there is nothing to
/// overlap (no stencil reads, or a single rank).
template <typename K, typename... Args>
void par_loop_overlap(DistContext& ctx, K kernel, Args... args) {
  auto binders = std::make_tuple(detail::make_binder(args)...);

  detail::IterSpace is;
  std::apply([&](const auto&... b) { (b.offer_iter(is), ...); }, binders);
  if (!is.iterate)
    throw std::invalid_argument(
        "dist::par_loop_overlap: needs at least one dat arg");

  std::array<int, 3> rad{0, 0, 0};
  bool any_halo = false;
  (detail::accum_overlap(args, is.dims, rad, any_halo), ...);
  if (!any_halo || ctx.comm().size() == 1) {
    par_loop(ctx, kernel, args...);
    return;
  }

  // Interior box: every point whose full read stencil lies in locally
  // owned (or physical-ghost) cells, i.e. at distance >= radius from
  // the block faces. The shell around it needs the exchanged halos.
  std::array<std::ptrdiff_t, 3> n{1, 1, 1};
  for (int d = 0; d < is.dims; ++d)
    n[static_cast<std::size_t>(d)] =
        static_cast<std::ptrdiff_t>(is.local[static_cast<std::size_t>(d)]);
  detail::Box interior;
  for (std::size_t d = 0; d < 3; ++d) {
    const auto r = static_cast<std::ptrdiff_t>(rad[d]);
    interior.lo[d] = std::min(r, n[d]);
    interior.hi[d] = std::max(n[d] - r, interior.lo[d]);
  }

  // 1. Post all halo sends (packs eagerly; receives deferred).
  std::vector<std::function<void()>> finishers;
  std::apply([&](const auto&... b) { (b.begin_halo(finishers), ...); },
             binders);

  auto sweep_interior = [&] {
    is.iterate_box(interior, [&](std::ptrdiff_t li, std::ptrdiff_t lj,
                                 std::ptrdiff_t lk) {
      std::apply([&](const auto&... b) { kernel(b.make(li, lj, lk)...); },
                 binders);
    });
  };

  // Overlap strategy: SYCLPORT_OVERLAP pins it; otherwise, with tuning
  // enabled, the autotuner races queue-submission against the inline
  // ordering for this loop's site (kOverlap axis, every rank reporting
  // into the same race) and locks in the faster one. The scope spans
  // the overlapped region so the measured time covers exactly what the
  // strategy changes.
  bool use_queue = sycl::detail::Scheduler::concurrency_available();
  std::optional<syclport::rt::autotune::TunedLaunchParams> tuned;
  {
    namespace at = syclport::rt::autotune;
    const auto pin = syclport::rt::env::get("SYCLPORT_OVERLAP");
    const bool pinned = pin && (*pin == "queue" || *pin == "inline");
    syclport::hw::seed_autotuner_priors();
    if (!pinned && at::current_phase() == at::Phase::None &&
        at::Autotuner::instance().enabled()) {
      at::Site site;
      site.name = "(dist_overlap)";
      site.dims = is.dims;
      site.global = is.local;
      site.axes = at::kOverlap;
      tuned.emplace(site);
      if (tuned->phase() != at::Phase::None && tuned->config().overlap_queue)
        use_queue = *tuned->config().overlap_queue;
    }
  }

  if (use_queue) {
    // 2. Interior sweep as an asynchronous command. Footprints are
    // declared per dat, so ranks' interior commands are independent in
    // the scheduler's DAG and genuinely run concurrently.
    sycl::event ev = ctx.queue().submit([&](sycl::handler& h) {
      std::apply([&](const auto&... b) { (b.declare(h), ...); }, binders);
      h.single_task(
          [binders, kernel, iterate_box = is.iterate_box, interior]() {
            iterate_box(interior, [&](std::ptrdiff_t li, std::ptrdiff_t lj,
                                      std::ptrdiff_t lk) {
              std::apply(
                  [&](const auto&... b) { kernel(b.make(li, lj, lk)...); },
                  binders);
            });
          });
    });

    // 3. Drain the receives on the rank thread while the interior runs
    // - the unpack writes only ghost cells, disjoint from every
    // interior read at distance >= radius.
    for (auto& fin : finishers) fin();

    // 4. Join the interior command (rethrows kernel exceptions).
    ev.wait();
  } else {
    // Single hardware thread: a worker handoff buys no wall-clock
    // overlap, so keep the overlap ordering (sends in flight during the
    // interior sweep) but run the sweep on this thread.
    sweep_interior();
    for (auto& fin : finishers) fin();
  }

  // 5. Boundary shell, onion-peeled so every point runs exactly once:
  // for dimension d, the low/high slabs restrict earlier dimensions to
  // the interior band and leave later ones full.
  for (int d = 0; d < is.dims; ++d) {
    for (int side = 0; side < 2; ++side) {
      detail::Box slab;
      for (std::size_t dd = 0; dd < 3; ++dd) {
        if (static_cast<int>(dd) < d) {
          slab.lo[dd] = interior.lo[dd];
          slab.hi[dd] = interior.hi[dd];
        } else if (static_cast<int>(dd) == d) {
          slab.lo[dd] = side == 0 ? 0 : interior.hi[dd];
          slab.hi[dd] = side == 0 ? interior.lo[dd] : n[dd];
        } else {
          slab.lo[dd] = 0;
          slab.hi[dd] = n[dd];
        }
      }
      is.iterate_box(slab, [&](std::ptrdiff_t li, std::ptrdiff_t lj,
                               std::ptrdiff_t lk) {
        std::apply([&](const auto&... b) { kernel(b.make(li, lj, lk)...); },
                   binders);
      });
    }
  }

  // 6. Cross-rank reduction combines (collective).
  std::apply([&](const auto&... b) { (b.finish(ctx), ...); }, binders);
}

}  // namespace syclport::ops::dist
