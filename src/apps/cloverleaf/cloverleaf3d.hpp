#pragma once
/// \file cloverleaf3d.hpp
/// CloverLeaf 3D mini-app (paper §3, item 1): the 3D variant of the
/// hydro cycle in cloverleaf2d.hpp, with three advection sweeps and six
/// halo faces per field - the larger boundary fraction (7.8% on the
/// A100, 11.1% on the MI250X) the paper measures.

#include "apps/common.hpp"
#include "ops/ops.hpp"

namespace syclport::apps {

/// Paper configuration: 408^3 cells, 50 iterations, double precision.
[[nodiscard]] inline ProblemSize cloverleaf3d_paper() {
  return {{408, 408, 408}, 50};
}

/// Reduced configuration for functional validation runs.
[[nodiscard]] inline ProblemSize cloverleaf3d_small() {
  return {{16, 16, 16}, 3};
}

/// Run the hydro cycle; checksum combines total mass and total energy.
[[nodiscard]] RunSummary run_cloverleaf3d(const ops::Options& opt,
                                          ProblemSize ps);

}  // namespace syclport::apps
