#pragma once
/// \file property.hpp
/// Queue properties. Only property::queue::in_order is meaningful here:
/// it degrades the out-of-order scheduler (detail/scheduler.hpp) to the
/// synchronous in-order semantics the seed implementation had.

#include <type_traits>

namespace sycl {

namespace property::queue {
/// Commands on this queue execute synchronously in submission order.
struct in_order {};
}  // namespace property::queue

template <typename P>
struct is_property : std::false_type {};
template <>
struct is_property<property::queue::in_order> : std::true_type {};

class property_list {
 public:
  property_list() = default;

  template <typename... Props>
    requires(is_property<Props>::value && ...)
  property_list(Props... props) {  // NOLINT(*-explicit-constructor)
    (set(props), ...);
  }

  [[nodiscard]] bool has_in_order() const noexcept { return in_order_; }

 private:
  void set(property::queue::in_order) noexcept { in_order_ = true; }
  bool in_order_ = false;
};

}  // namespace sycl
